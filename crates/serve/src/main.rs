#![forbid(unsafe_code)]
//! `cds-serve` — the routing daemon binary.
//!
//! ```text
//! cds-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--max-body-mb N]
//! ```
//!
//! Binds, prints one `listening ...` line to stdout (the CI smoke step
//! and scripts key off it), then serves until a client posts
//! `/shutdown`, at which point it drains every accepted job and exits
//! with a one-line tally.

use cds_serve::{ServeConfig, Server};

const USAGE: &str =
    "usage: cds-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--max-body-mb N]
  --addr HOST:PORT   bind address (default 127.0.0.1:7171; port 0 picks a free port)
  --workers N        routing worker threads (default 2)
  --queue-cap N      bounded job-queue capacity; full queue rejects with 503 (default 64)
  --max-body-mb N    largest accepted request body in MiB (default 16)";

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig { addr: "127.0.0.1:7171".into(), ..ServeConfig::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-cap" => {
                config.queue_cap =
                    value("--queue-cap")?.parse().map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--max-body-mb" => {
                let mb: usize =
                    value("--max-body-mb")?.parse().map_err(|e| format!("--max-body-mb: {e}"))?;
                config.max_body = mb << 20;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg == USAGE { 0 } else { 2 });
        }
    };
    let workers = config.workers;
    let queue_cap = config.queue_cap;
    let handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cds-serve: {e}");
            std::process::exit(1);
        }
    };
    println!("listening addr={} workers={workers} queue_cap={queue_cap}", handle.addr());
    let report = handle.wait();
    println!(
        "drained done={} cancelled={} failed={} cache_hits={} cache_misses={}",
        report.done, report.cancelled, report.failed, report.cache_hits, report.cache_misses
    );
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    #[test]
    fn parse_args_defaults_and_overrides() {
        let c = parse_args(&[]).unwrap();
        assert_eq!(c.addr, "127.0.0.1:7171");
        assert_eq!(c.workers, 2);
        let args: Vec<String> =
            ["--addr", "127.0.0.1:0", "--workers", "4", "--queue-cap", "8", "--max-body-mb", "1"]
                .iter()
                .map(|s| (*s).to_string())
                .collect();
        let c = parse_args(&args).unwrap();
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.workers, 4);
        assert_eq!(c.queue_cap, 8);
        assert_eq!(c.max_body, 1 << 20);
        assert!(parse_args(&["--bogus".into()]).is_err());
        assert!(parse_args(&["--workers".into()]).is_err());
    }
}
