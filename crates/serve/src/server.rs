//! The routing daemon: job table, bounded FIFO queue, warm-workspace
//! worker pool, checksum-keyed result cache, and graceful drain.
//!
//! # Life of a job
//!
//! `POST /jobs` parses the `cdst/1` body, resolves the router
//! configuration (defaults ← the document's `config` records ← query
//! string overrides, the same layering as `cds-cli route`), and
//! canonicalizes the document through the round-trip-total writer. The
//! FNV-1a key over (canonical bytes, resolved config) indexes the
//! result cache: a hit creates an already-`done` job served from the
//! archived response — byte-identical to the fresh run's, at zero
//! routing cost. A miss enqueues the job on a bounded FIFO queue
//! (`503` when full — backpressure, not buffering). Each worker thread
//! owns one warm [`WorkerPool`] whose oracle workspaces and scratch
//! forests persist across jobs *and chips*; warm reuse is bit-identical
//! to a cold router by the per-net-input determinism contract
//! (`cds_router::WorkerPool` docs), which is what lets a cache entry
//! stand for every future identical submission.
//!
//! `GET /jobs/:id` reports state plus the per-iteration progress the
//! router's hook has recorded so far; `GET /jobs/:id/result` returns
//! the result JSON, rendered by the same `cds_router::report` function
//! `cds-cli route` prints. A submission whose (canonical bytes,
//! resolved config) key matches a job that is still queued or running
//! does not enqueue a second route: it *coalesces* — the response
//! carries the in-flight job's id (marked `"coalesced": true`) and
//! every attached client polls the same job, so one route serves all
//! of them. This is sound for the same reason the cache is: identical
//! submissions produce bit-identical results, so a second route could
//! add nothing but load. `DELETE /jobs/:id` cancels cooperatively:
//! queued jobs are skipped by the drain, running jobs stop before their
//! next rip-up iteration and archive their partial (but internally
//! consistent) outcome — partial results are never cached.
//!
//! `POST /shutdown` (or [`ServerHandle::shutdown`]) drains: the
//! acceptor stops taking connections, workers finish the queue,
//! in-flight jobs complete, and every thread joins — no signal
//! handling, no aborted routes.

use crate::http::{self, Request};
use cds_instgen::io::doc::{chip_doc_to_string, parse_chip_doc, ChipDoc};
use cds_router::report::{json_escape, json_f64, outcome_json};
use cds_router::{Router, RouterConfig, RunControl, WorkerPool};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Daemon tuning; every bound is explicit.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port — the test form).
    pub addr: String,
    /// Routing worker threads, each with its own warm workspace pool.
    /// `0` is accepted (jobs queue but never run) and exists for queue
    /// and cancellation tests.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with 503.
    pub queue_cap: usize,
    /// Largest accepted request body in bytes (chip documents are a
    /// few hundred KB at bench scale).
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { addr: "127.0.0.1:0".into(), workers: 2, queue_cap: 64, max_body: 16 << 20 }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// A worker is routing it.
    Running,
    /// Finished; result available (possibly straight from the cache).
    Done,
    /// Cancelled — before it ran (no result) or cooperatively mid-run
    /// (partial result available).
    Cancelled,
    /// The worker could not complete it (panic or internal error).
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// One archived result: the exact response body plus its checksum.
#[derive(Debug, Clone)]
struct ResultEntry {
    json: String,
    checksum: u64,
}

/// Per-iteration progress snapshot recorded by the router's hook.
#[derive(Debug, Clone)]
struct IterProgress {
    iter: usize,
    rerouted: usize,
    wall_s: f64,
}

/// One job record. `doc`/`config` are taken by the worker when the job
/// starts; everything else is status-endpoint state.
struct Job {
    state: JobState,
    cached: bool,
    cancel_requested: bool,
    key: u64,
    ctrl: Arc<RunControl>,
    doc: Option<Box<ChipDoc>>,
    config: RouterConfig,
    total_iterations: usize,
    progress: Vec<IterProgress>,
    result: Option<ResultEntry>,
    error: Option<String>,
}

/// Shared daemon state.
struct State {
    config: ServeConfig,
    jobs: Mutex<Vec<Job>>,
    queue: Mutex<VecDeque<usize>>,
    queue_cv: Condvar,
    cache: Mutex<HashMap<u64, ResultEntry>>,
    draining: AtomicBool,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Submissions that attached to an identical in-flight job instead
    /// of enqueueing a second route.
    coalesced: AtomicU64,
    active_conns: AtomicUsize,
}

/// Locks that survive a poisoned mutex: a panicking worker must not
/// take the whole daemon's status endpoints down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// FNV-1a over length-framed parts (framing keeps `("ab","c")` and
/// `("a","bc")` distinct).
fn fnv1a_parts(parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |x: u8| {
        h ^= u64::from(x);
        h = h.wrapping_mul(0x100000001b3);
    };
    for part in parts {
        for &b in part.len().to_le_bytes().iter() {
            eat(b);
        }
        for &b in *part {
            eat(b);
        }
    }
    h
}

/// The resolved-configuration component of the cache key. The derived
/// `Debug` rendering covers every `RouterConfig` field by construction,
/// so a future knob cannot silently alias two different configurations
/// onto one cache entry.
fn config_fingerprint(c: &RouterConfig) -> String {
    format!("{c:?}")
}

/// Everything the server knows after draining, for tests and the
/// binary's exit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that finished with a result.
    pub done: usize,
    /// Jobs cancelled (before or during their run).
    pub cancelled: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Cache hits / misses over the server's lifetime.
    pub cache_hits: u64,
    /// See `cache_hits`.
    pub cache_misses: u64,
}

/// A running daemon: bound address plus the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves `:0` port requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon drains — which happens when some client
    /// sends `POST /shutdown`. Returns the drain tally.
    pub fn wait(self) -> DrainReport {
        let state = Arc::clone(&self.state);
        for t in self.threads {
            let _ = t.join();
        }
        Self::tally(&state)
    }

    /// Initiates a graceful drain (idempotent with an HTTP shutdown)
    /// and blocks until every queued and in-flight job completed and
    /// all threads joined.
    pub fn shutdown(self) -> DrainReport {
        self.state.draining.store(true, Ordering::Release);
        self.state.queue_cv.notify_all();
        self.wait()
    }

    fn tally(state: &State) -> DrainReport {
        let jobs = lock(&state.jobs);
        let count = |s: JobState| jobs.iter().filter(|j| j.state == s).count();
        DrainReport {
            done: count(JobState::Done),
            cancelled: count(JobState::Cancelled),
            failed: count(JobState::Failed),
            cache_hits: state.cache_hits.load(Ordering::Relaxed),
            cache_misses: state.cache_misses.load(Ordering::Relaxed),
        }
    }
}

/// The daemon. [`Server::start`] binds, spawns the acceptor and the
/// worker pool, and returns a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts serving.
    ///
    /// # Errors
    ///
    /// A human-readable message when the address cannot be bound.
    pub fn start(config: ServeConfig) -> Result<ServerHandle, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
        listener.set_nonblocking(true).map_err(|e| format!("set_nonblocking: {e}"))?;
        let state = Arc::new(State {
            config: config.clone(),
            jobs: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            cache: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
        });
        let mut threads = Vec::with_capacity(config.workers + 1);
        for _ in 0..config.workers {
            let state = Arc::clone(&state);
            threads.push(std::thread::spawn(move || worker_loop(&state)));
        }
        {
            let state = Arc::clone(&state);
            threads.push(std::thread::spawn(move || acceptor_loop(&listener, &state)));
        }
        Ok(ServerHandle { addr, state, threads })
    }
}

/// Accepts connections until draining, then waits for in-flight
/// connection handlers to finish. Nonblocking accept with a short nap
/// keeps shutdown latency bounded without signal machinery.
fn acceptor_loop(listener: &TcpListener, state: &Arc<State>) {
    while !state.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                state.active_conns.fetch_add(1, Ordering::AcqRel);
                let state = Arc::clone(state);
                std::thread::spawn(move || {
                    handle_conn(&state, stream);
                    state.active_conns.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // drain: let in-flight request handlers write their responses
    while state.active_conns.load(Ordering::Acquire) > 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    // wake any worker still parked on the queue condvar
    state.queue_cv.notify_all();
}

/// One worker: owns a warm [`WorkerPool`] for its whole life, drains
/// the queue, and exits only when the queue is empty *and* the daemon
/// is draining — so accepted jobs always complete.
fn worker_loop(state: &Arc<State>) {
    let mut pool = WorkerPool::new();
    loop {
        let id = {
            let mut q = lock(&state.queue);
            loop {
                if let Some(id) = q.pop_front() {
                    break id;
                }
                if state.draining.load(Ordering::Acquire) {
                    return;
                }
                q = state
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        };
        run_job(state, id, &mut pool);
    }
}

/// Routes one dequeued job to completion (or skips it if it was
/// cancelled while queued). Panics inside the router are contained:
/// the job fails, the worker and its warm pool survive.
fn run_job(state: &Arc<State>, id: usize, pool: &mut WorkerPool) {
    let (doc, config, ctrl, key) = {
        let mut jobs = lock(&state.jobs);
        let job = &mut jobs[id];
        if job.state != JobState::Queued {
            // cancelled while waiting — nothing to route
            return;
        }
        job.state = JobState::Running;
        // a queued job always carries its document; if that invariant
        // ever breaks, fail the one job with a mapped 500 instead of
        // panicking the worker (`cds-lint` rule no-panic-in-serve)
        let Some(doc) = job.doc.take() else {
            job.state = JobState::Failed;
            job.error = Some("internal: queued job lost its document".into());
            return;
        };
        (doc, job.config.clone(), Arc::clone(&job.ctrl), job.key)
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let chip = doc.build_chip();
        let router = Router::new(&chip, config.clone());
        let state_for_progress = Arc::clone(state);
        let outcome = router.run_with(pool, &ctrl, &mut |iter, stats| {
            let mut jobs = lock(&state_for_progress.jobs);
            jobs[id].progress.push(IterProgress {
                iter,
                rerouted: stats.rerouted_per_iter.last().copied().unwrap_or(0),
                wall_s: stats.iter_wall_s.last().copied().unwrap_or(0.0),
            });
        });
        let json = outcome_json(&chip, &config, &outcome);
        (json, outcome.checksum(), outcome.stats.cancelled)
    }));
    match outcome {
        Ok((json, checksum, cancelled)) => {
            let entry = ResultEntry { json, checksum };
            if !cancelled {
                // only complete runs are cacheable: a partial result is
                // not what a fresh route of the same submission returns
                lock(&state.cache).insert(key, entry.clone());
            }
            let mut jobs = lock(&state.jobs);
            let job = &mut jobs[id];
            job.state = if cancelled { JobState::Cancelled } else { JobState::Done };
            job.result = Some(entry);
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".into());
            let mut jobs = lock(&state.jobs);
            let job = &mut jobs[id];
            job.state = JobState::Failed;
            job.error = Some(msg);
        }
    }
}

/// Reads one request off the connection, dispatches it, writes the
/// response. One request per connection (`Connection: close`).
fn handle_conn(state: &Arc<State>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut out = stream;
    match http::parse_request(&mut reader, state.config.max_body) {
        Ok(req) => {
            let resp = dispatch(state, &req);
            let _ = http::write_response(
                &mut out,
                resp.status,
                "application/json",
                resp.body.as_bytes(),
                &resp.headers(),
            );
        }
        Err(e) => {
            let body = error_body(&e.to_string());
            let _ = http::write_response(
                &mut out,
                e.status(),
                "application/json",
                body.as_bytes(),
                &[],
            );
        }
    }
}

/// Internal response value: status, JSON body, optional extra headers.
struct Reply {
    status: u16,
    body: String,
    cached: Option<bool>,
    job_state: Option<&'static str>,
}

impl Reply {
    fn new(status: u16, body: String) -> Self {
        Reply { status, body, cached: None, job_state: None }
    }

    fn headers(&self) -> Vec<(&'static str, &'static str)> {
        let mut h = Vec::new();
        if let Some(c) = self.cached {
            h.push(("X-Cds-Cached", if c { "true" } else { "false" }));
        }
        if let Some(s) = self.job_state {
            h.push(("X-Cds-Job-State", s));
        }
        h
    }
}

fn error_body(msg: &str) -> String {
    format!("{{\"error\": \"{}\"}}", json_escape(msg))
}

/// Routes a parsed request to its handler.
fn dispatch(state: &Arc<State>, req: &Request) -> Reply {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("POST", ["jobs"]) => submit(state, req),
        ("GET", ["jobs", id]) => with_job_id(id, |id| status(state, id)),
        ("GET", ["jobs", id, "result"]) => with_job_id(id, |id| result(state, id)),
        ("DELETE", ["jobs", id]) => with_job_id(id, |id| cancel(state, id)),
        ("POST", ["shutdown"]) => shutdown(state),
        ("GET", ["healthz"]) => healthz(state),
        (_, ["jobs"]) | (_, ["jobs", ..]) | (_, ["shutdown"]) | (_, ["healthz"]) => {
            Reply::new(405, error_body("method not allowed"))
        }
        _ => Reply::new(404, error_body(&format!("no such endpoint {}", req.path))),
    }
}

fn with_job_id(raw: &str, f: impl FnOnce(usize) -> Reply) -> Reply {
    match raw.parse::<usize>() {
        Ok(id) => f(id),
        Err(_) => Reply::new(404, error_body(&format!("bad job id {raw}"))),
    }
}

/// `POST /jobs`: parse → resolve config → canonicalize → cache lookup
/// → enqueue (or reject with backpressure).
fn submit(state: &Arc<State>, req: &Request) -> Reply {
    if state.draining.load(Ordering::Acquire) {
        return Reply::new(503, error_body("shutting down"));
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Reply::new(400, error_body("document body is not UTF-8")),
    };
    // the parse error's Display carries the 1-based line number; the
    // structured `line` field repeats it for programmatic clients
    let doc = match parse_chip_doc(text) {
        Ok(d) => d,
        Err(e) => {
            return Reply::new(
                400,
                format!("{{\"error\": \"{}\", \"line\": {}}}", json_escape(&e.to_string()), e.line),
            )
        }
    };
    let mut config = RouterConfig::default();
    for (k, v) in &doc.config {
        if let Err(e) = config.set_knob(k, v) {
            return Reply::new(400, error_body(&format!("document config record: {e}")));
        }
    }
    for (k, v) in &req.query {
        if let Err(e) = config.set_knob(k, v) {
            return Reply::new(400, error_body(&format!("query override {k}: {e}")));
        }
    }
    // canonical bytes: the round-trip-total writer normalizes away
    // comments/blank lines, so every spelling of the same document
    // shares one cache key
    let canonical = match chip_doc_to_string(&doc) {
        Ok(c) => c,
        Err(e) => return Reply::new(400, error_body(&e.to_string())),
    };
    let fingerprint = config_fingerprint(&config);
    let key = fnv1a_parts(&[canonical.as_bytes(), fingerprint.as_bytes()]);

    let cached = lock(&state.cache).get(&key).cloned();
    let total_iterations = config.iterations;
    let mut jobs = lock(&state.jobs);
    let id = jobs.len();
    if let Some(entry) = cached {
        state.cache_hits.fetch_add(1, Ordering::Relaxed);
        jobs.push(Job {
            state: JobState::Done,
            cached: true,
            cancel_requested: false,
            key,
            ctrl: Arc::new(RunControl::new()),
            doc: None,
            config,
            total_iterations,
            progress: Vec::new(),
            result: Some(entry),
            error: None,
        });
        let mut r =
            Reply::new(200, format!("{{\"job\": {id}, \"state\": \"done\", \"cached\": true}}"));
        r.cached = Some(true);
        return r;
    }
    // in-flight coalescing: the same key already queued or running
    // attaches this client to that job instead of routing twice. A
    // cancel-requested job is excluded — its result (none, or partial)
    // is not what a fresh submission asks for.
    if let Some(open) = jobs.iter().position(|j| {
        j.key == key
            && !j.cancel_requested
            && matches!(j.state, JobState::Queued | JobState::Running)
    }) {
        state.coalesced.fetch_add(1, Ordering::Relaxed);
        let st = jobs[open].state.as_str();
        let mut r = Reply::new(
            200,
            format!(
                "{{\"job\": {open}, \"state\": \"{st}\", \"cached\": false, \
                 \"coalesced\": true}}"
            ),
        );
        r.cached = Some(false);
        r.job_state = Some(st);
        return r;
    }
    state.cache_misses.fetch_add(1, Ordering::Relaxed);
    let mut queue = lock(&state.queue);
    if queue.len() >= state.config.queue_cap {
        return Reply::new(
            503,
            format!(
                "{{\"error\": \"queue full\", \"queued\": {}, \"capacity\": {}}}",
                queue.len(),
                state.config.queue_cap
            ),
        );
    }
    jobs.push(Job {
        state: JobState::Queued,
        cached: false,
        cancel_requested: false,
        key,
        ctrl: Arc::new(RunControl::new()),
        doc: Some(Box::new(doc)),
        config,
        total_iterations,
        progress: Vec::new(),
        result: None,
        error: None,
    });
    queue.push_back(id);
    state.queue_cv.notify_one();
    let mut r =
        Reply::new(201, format!("{{\"job\": {id}, \"state\": \"queued\", \"cached\": false}}"));
    r.cached = Some(false);
    r
}

/// `GET /jobs/:id`: state plus per-iteration progress so far.
fn status(state: &Arc<State>, id: usize) -> Reply {
    let jobs = lock(&state.jobs);
    let Some(job) = jobs.get(id) else {
        return Reply::new(404, error_body(&format!("unknown job {id}")));
    };
    let mut body = String::new();
    let _ = write!(
        body,
        "{{\"job\": {id}, \"state\": \"{}\", \"cached\": {}, \"cancel_requested\": {}, \
         \"iterations_done\": {}, \"total_iterations\": {}, \"progress\": [",
        job.state.as_str(),
        job.cached,
        job.cancel_requested,
        job.progress.len(),
        job.total_iterations
    );
    for (i, p) in job.progress.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        let _ = write!(
            body,
            "{{\"iter\": {}, \"rerouted\": {}, \"wall_s\": {}}}",
            p.iter,
            p.rerouted,
            json_f64(p.wall_s)
        );
    }
    body.push(']');
    if let Some(res) = &job.result {
        let _ = write!(body, ", \"checksum\": \"{:#018x}\"", res.checksum);
    }
    if let Some(err) = &job.error {
        let _ = write!(body, ", \"error\": \"{}\"", json_escape(err));
    }
    body.push('}');
    let mut r = Reply::new(200, body);
    r.job_state = Some(job.state.as_str());
    r.cached = Some(job.cached);
    r
}

/// `GET /jobs/:id/result`: the archived result JSON, exactly what
/// `cds-cli route` would print (and byte-identical to it for every
/// deterministic field).
fn result(state: &Arc<State>, id: usize) -> Reply {
    let jobs = lock(&state.jobs);
    let Some(job) = jobs.get(id) else {
        return Reply::new(404, error_body(&format!("unknown job {id}")));
    };
    match (&job.result, job.state) {
        (Some(res), _) => {
            let mut r = Reply::new(200, res.json.clone());
            r.cached = Some(job.cached);
            r.job_state = Some(job.state.as_str());
            r
        }
        (None, JobState::Failed) => {
            Reply::new(500, error_body(job.error.as_deref().unwrap_or("job failed")))
        }
        (None, JobState::Cancelled) => {
            Reply::new(409, error_body("job was cancelled before it ran"))
        }
        (None, _) => Reply::new(
            409,
            format!("{{\"error\": \"job not finished\", \"state\": \"{}\"}}", job.state.as_str()),
        ),
    }
}

/// `DELETE /jobs/:id`: cooperative cancel; idempotent on repeats and
/// on finished jobs.
fn cancel(state: &Arc<State>, id: usize) -> Reply {
    let mut jobs = lock(&state.jobs);
    let Some(job) = jobs.get_mut(id) else {
        return Reply::new(404, error_body(&format!("unknown job {id}")));
    };
    job.cancel_requested = true;
    match job.state {
        JobState::Queued => {
            // the worker's dequeue skips non-queued jobs
            job.state = JobState::Cancelled;
        }
        JobState::Running => job.ctrl.cancel(),
        // done/cancelled/failed: nothing to stop — idempotent
        _ => {}
    }
    let body = format!(
        "{{\"job\": {id}, \"state\": \"{}\", \"cancel_requested\": true}}",
        job.state.as_str()
    );
    let mut r = Reply::new(200, body);
    r.job_state = Some(job.state.as_str());
    r
}

/// `POST /shutdown`: graceful drain (see module docs).
fn shutdown(state: &Arc<State>) -> Reply {
    state.draining.store(true, Ordering::Release);
    state.queue_cv.notify_all();
    Reply::new(200, "{\"draining\": true}".into())
}

/// `GET /healthz`: liveness plus queue/cache counters.
fn healthz(state: &Arc<State>) -> Reply {
    let queued = lock(&state.queue).len();
    let jobs = lock(&state.jobs).len();
    let cache_entries = lock(&state.cache).len();
    Reply::new(
        200,
        format!(
            "{{\"ok\": true, \"draining\": {}, \"workers\": {}, \"jobs\": {jobs}, \
             \"queued\": {queued}, \"queue_capacity\": {}, \"cache_entries\": {cache_entries}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"coalesced\": {}}}",
            state.draining.load(Ordering::Acquire),
            state.config.workers,
            state.config.queue_cap,
            state.cache_hits.load(Ordering::Relaxed),
            state.cache_misses.load(Ordering::Relaxed),
            state.coalesced.load(Ordering::Relaxed)
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_instgen::ChipSpec;

    fn test_state() -> Arc<State> {
        Arc::new(State {
            config: ServeConfig::default(),
            jobs: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            cache: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
        })
    }

    fn docless_queued_job() -> Job {
        Job {
            state: JobState::Queued,
            cached: false,
            cancel_requested: false,
            key: 0,
            ctrl: Arc::new(RunControl::new()),
            doc: None, // the broken-invariant input run_job must survive
            config: RouterConfig::default(),
            total_iterations: 1,
            progress: Vec::new(),
            result: None,
            error: None,
        }
    }

    /// Regression for the `run_job` doc-take site: before the lint
    /// hardening this was `.expect(…)` and a docless queued job killed
    /// the worker thread; now it fails the one job with a mapped error.
    #[test]
    fn docless_queued_job_fails_without_panicking_the_worker() {
        let state = test_state();
        lock(&state.jobs).push(docless_queued_job());
        let mut pool = WorkerPool::new();
        run_job(&state, 0, &mut pool); // must not panic
        {
            let jobs = lock(&state.jobs);
            assert_eq!(jobs[0].state, JobState::Failed);
            assert_eq!(jobs[0].error.as_deref(), Some("internal: queued job lost its document"));
        }
        // the failure surfaces as a mapped 500, not a dead connection
        let reply = result(&state, 0);
        assert_eq!(reply.status, 500);
        assert!(reply.body.contains("queued job lost its document"));
        // and the status endpoint still reports the job
        let reply = status(&state, 0);
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"state\": \"failed\""));
    }

    fn post_jobs(body: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "POST".into(),
            path: "/jobs".into(),
            query: query.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// The coalescing contract end to end at the handler level: N
    /// identical submissions while the first is still queued create
    /// exactly one job, one queue entry, and one route — and every
    /// attached client reads the same result bytes off that one job.
    #[test]
    fn duplicate_inflight_submissions_coalesce_onto_one_route() {
        let state = test_state();
        let spec = ChipSpec { num_nets: 8, ..ChipSpec::small_test(2) };
        let doc = chip_doc_to_string(&ChipDoc::from_chip(&spec.generate()).unwrap()).unwrap();
        let q = [("iterations", "2")];
        let first = submit(&state, &post_jobs(&doc, &q));
        assert_eq!(first.status, 201, "{}", first.body);
        for _ in 0..3 {
            let dup = submit(&state, &post_jobs(&doc, &q));
            assert_eq!(dup.status, 200, "{}", dup.body);
            assert!(dup.body.contains("\"job\": 0"), "attach to job 0: {}", dup.body);
            assert!(dup.body.contains("\"coalesced\": true"), "{}", dup.body);
        }
        assert_eq!(lock(&state.jobs).len(), 1, "duplicates must not create jobs");
        assert_eq!(lock(&state.queue).len(), 1, "duplicates must not enqueue");
        // a different resolved config is not a duplicate
        let other = submit(&state, &post_jobs(&doc, &[("iterations", "3")]));
        assert_eq!(other.status, 201, "{}", other.body);
        // drain job 0 the way a worker would: one route, then every
        // attached client's result read returns identical bytes
        let id = lock(&state.queue).pop_front().unwrap();
        let mut pool = WorkerPool::new();
        run_job(&state, id, &mut pool);
        assert_eq!(lock(&state.jobs)[0].state, JobState::Done);
        let bodies: Vec<String> = (0..4).map(|_| result(&state, 0).body.clone()).collect();
        assert!(bodies.iter().all(|b| *b == bodies[0]), "responses diverged");
        assert_eq!(state.coalesced.load(Ordering::Relaxed), 3);
        // the three attached clients never counted as cache traffic
        assert_eq!(state.cache_misses.load(Ordering::Relaxed), 2);
        // once the job is done the cache takes over from coalescing
        let after = submit(&state, &post_jobs(&doc, &q));
        assert_eq!(after.status, 200);
        assert!(after.body.contains("\"cached\": true"), "{}", after.body);
    }
}
