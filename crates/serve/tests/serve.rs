//! End-to-end daemon tests: every test boots its own server on an
//! ephemeral port and talks real HTTP over loopback.
//!
//! The determinism assertions lean on the repo's pinned goldens
//! (`tests/fixtures/*.expect`): a result produced through the service —
//! warm workers, queueing, interleaved jobs and all — must carry the
//! same checksum as a cold `cds-cli route` of the same document.

use cds_instgen::io::doc::{chip_doc_to_string, parse_chip_doc, ChipDoc};
use cds_instgen::ChipSpec;
use cds_router::report::outcome_json;
use cds_router::{Router, RouterConfig};
use cds_serve::client::{self, json_bool, json_str, json_u64};
use cds_serve::{ServeConfig, Server};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const POLL: Duration = Duration::from_millis(2);

fn fixture(name: &str) -> String {
    let path = format!("{}/../../tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn pinned_checksum(name: &str) -> String {
    fixture(name).trim().to_string()
}

/// The CI smoke chip, byte-identical to `cds-cli gen --preset smoke`.
fn smoke_doc() -> String {
    let spec = ChipSpec { name: "smoke".into(), num_nets: 40, ..ChipSpec::small_test(44) };
    chip_doc_to_string(&ChipDoc::from_chip(&spec.generate()).unwrap()).unwrap()
}

fn small_doc() -> String {
    let spec = ChipSpec::small_test(1);
    chip_doc_to_string(&ChipDoc::from_chip(&spec.generate()).unwrap()).unwrap()
}

fn start(config: ServeConfig) -> (cds_serve::ServerHandle, String) {
    let handle = Server::start(config).expect("server starts");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// Zeroes the wall-clock and arena observability fields — the only
/// JSON fields that legitimately differ between two runs of the same
/// submission (a warm worker's arenas can be pre-grown by prior jobs).
fn normalize(json: &str) -> String {
    let mut s = json.to_string();
    for key in ["walltime_s", "wall_s", "route_wall_s", "peak_arena_bytes"] {
        s = blank_value(&s, key, &[',', '}']);
    }
    blank_value(&s, "iter_wall_s", &[']'])
}

fn blank_value(json: &str, key: &str, stops: &[char]) -> String {
    let needle = format!("\"{key}\": ");
    let mut out = String::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        let val_start = at + needle.len();
        out.push_str(&rest[..val_start]);
        let tail = &rest[val_start..];
        let end = tail.find(|c| stops.contains(&c)).unwrap_or(tail.len());
        out.push('0');
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn submitted_result_matches_local_route_and_smoke_pin() {
    let (handle, addr) = start(ServeConfig::default());
    let doc_text = smoke_doc();
    let res = client::submit_and_wait(&addr, &doc_text, "", POLL).expect("job completes");
    assert_eq!(res.state, "done");
    assert!(!res.cached);
    assert_eq!(res.checksum, pinned_checksum("smoke_cd.expect"), "smoke golden");

    // the same route, computed locally with the library — the HTTP
    // result must be the same bytes modulo wall clocks
    let doc = parse_chip_doc(&doc_text).unwrap();
    let chip = doc.build_chip();
    let config = RouterConfig::default();
    let local = Router::new(&chip, config.clone()).run();
    let local_json = outcome_json(&chip, &config, &local);
    assert_eq!(normalize(&res.result_json), normalize(&local_json));
    handle.shutdown();
}

#[test]
fn resubmission_hits_cache_with_identical_bytes() {
    let (handle, addr) = start(ServeConfig::default());
    let doc = smoke_doc();
    let first = client::submit_and_wait(&addr, &doc, "", POLL).unwrap();
    let again = client::submit_and_wait(&addr, &doc, "", POLL).unwrap();
    assert!(!first.cached);
    assert!(again.cached, "identical resubmission must hit the cache");
    // archived bytes, not a re-render: literally identical, wall
    // clocks included
    assert_eq!(first.result_json, again.result_json);
    assert!(
        again.latency_s < 1.0,
        "cache hit took {:.3}s — it must not route anything",
        again.latency_s
    );
    // the hit is observable on the wire too
    let resp = client::request(&addr, "GET", &format!("/jobs/{}/result", again.job), b"").unwrap();
    assert_eq!(resp.header("X-Cds-Cached"), Some("true"));
    let report = handle.shutdown();
    assert_eq!((report.cache_hits, report.cache_misses), (1, 1));
}

#[test]
fn warm_worker_reuse_matches_cold_pins_across_interleaved_jobs() {
    // one worker → every job reuses the same warm workspaces; distinct
    // `threads` overrides give distinct cache keys (so each submission
    // really routes) while the pinned checksums are thread-invariant
    let (handle, addr) = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    let smoke = smoke_doc();
    let other = small_doc();
    let smoke_pin = pinned_checksum("smoke_cd.expect");
    let mut small_checksums = Vec::new();
    for round in 1..=3u32 {
        let query = format!("?threads={round}");
        let res = client::submit_and_wait(&addr, &smoke, &query, POLL).unwrap();
        assert!(!res.cached, "threads={round} must be a fresh cache key");
        assert_eq!(res.checksum, smoke_pin, "warm round {round} diverged from the cold pin");
        let res = client::submit_and_wait(&addr, &other, &query, POLL).unwrap();
        small_checksums.push(res.checksum);
    }
    assert_eq!(small_checksums[0], small_checksums[1]);
    assert_eq!(small_checksums[1], small_checksums[2]);

    // and a fixture recorded by an earlier PR, routed at its pinned
    // configuration, through the same warm worker
    let fanout = fixture("fanout_heavy.cdst");
    let res = client::submit_and_wait(&addr, &fanout, "?iterations=3", POLL).unwrap();
    assert_eq!(res.checksum, pinned_checksum("fanout_heavy_cd.expect"), "fanout_heavy golden");
    handle.shutdown();
}

#[test]
fn malformed_request_line_gets_400() {
    let (handle, addr) = start(ServeConfig { workers: 0, ..ServeConfig::default() });
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"NOT-AN-HTTP-REQUEST\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let resp = cds_serve::http::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("malformed request line"));
    handle.shutdown();
}

#[test]
fn oversized_body_gets_413_before_any_parsing() {
    let (handle, addr) =
        start(ServeConfig { workers: 0, max_body: 1024, ..ServeConfig::default() });
    let huge = "x".repeat(4096);
    let resp = client::request(&addr, "POST", "/jobs", huge.as_bytes()).unwrap();
    assert_eq!(resp.status, 413);
    assert!(resp.text().contains("exceeds the 1024-byte limit"));
    handle.shutdown();
}

#[test]
fn truncated_document_gets_400_with_line_number() {
    let (handle, addr) = start(ServeConfig { workers: 0, ..ServeConfig::default() });
    let doc = smoke_doc();
    // keep 5 good lines, then inject a line the parser must reject
    let mut mangled: Vec<&str> = doc.lines().take(5).collect();
    mangled.push("garbage tokens that are not a cdst/1 record");
    let body = mangled.join("\n");
    let resp = client::request(&addr, "POST", "/jobs", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 400);
    let text = resp.text();
    assert_eq!(json_u64(&text, "line"), Some(6), "1-based error line in: {text}");
    assert!(text.contains("line 6"), "Display line number in: {text}");
    handle.shutdown();
}

#[test]
fn unknown_jobs_and_methods_get_404_and_405() {
    let (handle, addr) = start(ServeConfig { workers: 0, ..ServeConfig::default() });
    for path in ["/jobs/999", "/jobs/999/result", "/jobs/notanumber"] {
        let resp = client::request(&addr, "GET", path, b"").unwrap();
        assert_eq!(resp.status, 404, "GET {path}");
    }
    let resp = client::request(&addr, "PUT", "/jobs", b"").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client::request(&addr, "GET", "/nope", b"").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client::request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(json_bool(&resp.text(), "ok"), Some(true));
    handle.shutdown();
}

#[test]
fn double_cancel_is_idempotent_and_queued_jobs_never_run() {
    // no workers: the job stays queued until cancelled
    let (handle, addr) = start(ServeConfig { workers: 0, ..ServeConfig::default() });
    let resp = client::request(&addr, "POST", "/jobs", smoke_doc().as_bytes()).unwrap();
    assert_eq!(resp.status, 201);
    let job = json_u64(&resp.text(), "job").unwrap();
    for _ in 0..2 {
        let resp = client::request(&addr, "DELETE", &format!("/jobs/{job}"), b"").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(json_str(&resp.text(), "state"), Some("cancelled"));
    }
    let resp = client::request(&addr, "GET", &format!("/jobs/{job}/result"), b"").unwrap();
    assert_eq!(resp.status, 409, "a never-run job has no result");
    let report = handle.shutdown();
    assert_eq!(report.cancelled, 1);
}

#[test]
fn full_queue_rejects_with_503() {
    let (handle, addr) = start(ServeConfig { workers: 0, queue_cap: 2, ..ServeConfig::default() });
    let doc = smoke_doc();
    // distinct seeds → distinct cache keys, so nothing short-circuits
    for seed in 0..2 {
        let path = format!("/jobs?seed={seed}");
        let resp = client::request(&addr, "POST", &path, doc.as_bytes()).unwrap();
        assert_eq!(resp.status, 201);
    }
    let resp = client::request(&addr, "POST", "/jobs?seed=2", doc.as_bytes()).unwrap();
    assert_eq!(resp.status, 503);
    let text = resp.text();
    assert_eq!(json_u64(&text, "capacity"), Some(2), "backpressure body: {text}");
    handle.shutdown();
}

#[test]
fn cancelling_a_running_job_keeps_its_partial_result() {
    let (handle, addr) = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    // a chip slow enough that cancellation lands mid-run: full
    // (non-incremental) reroutes of a congested 300-net chip
    let spec = ChipSpec {
        name: "converging".into(),
        num_nets: 300,
        utilization: 0.22,
        ..ChipSpec::small_test(5)
    };
    let doc = chip_doc_to_string(&ChipDoc::from_chip(&spec.generate()).unwrap()).unwrap();
    let resp =
        client::request(&addr, "POST", "/jobs?iterations=200&incremental=false", doc.as_bytes())
            .unwrap();
    assert_eq!(resp.status, 201);
    let job = json_u64(&resp.text(), "job").unwrap();
    // wait until it is demonstrably mid-run (≥1 iteration recorded)
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::request(&addr, "GET", &format!("/jobs/{job}"), b"").unwrap();
        let text = resp.text();
        if json_u64(&text, "iterations_done").unwrap_or(0) >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "job never reached iteration 1: {text}");
        std::thread::sleep(POLL);
    }
    let resp = client::request(&addr, "DELETE", &format!("/jobs/{job}"), b"").unwrap();
    assert_eq!(resp.status, 200);
    let deadline = Instant::now() + Duration::from_secs(120);
    let final_state = loop {
        let resp = client::request(&addr, "GET", &format!("/jobs/{job}"), b"").unwrap();
        let text = resp.text();
        let state = json_str(&text, "state").unwrap().to_string();
        if state != "queued" && state != "running" {
            break state;
        }
        assert!(Instant::now() < deadline, "job never terminated: {text}");
        std::thread::sleep(POLL);
    };
    assert_eq!(final_state, "cancelled");
    let resp = client::request(&addr, "GET", &format!("/jobs/{job}/result"), b"").unwrap();
    assert_eq!(resp.status, 200, "a cancelled run still has its partial outcome");
    let text = resp.text();
    assert!(text.contains("\"cancelled\": true"), "partial result is marked: {text}");
    // far fewer than the requested 200 iterations actually ran
    let done = json_u64(&text, "iterations_completed").unwrap();
    assert!((1..200).contains(&done), "iterations_completed = {done}");
    // partial results must not poison the cache: resubmitting routes
    // fresh and completes
    let resp =
        client::request(&addr, "POST", "/jobs?iterations=2&incremental=false", doc.as_bytes())
            .unwrap();
    assert_eq!(resp.status, 201, "different config, fresh key");
    handle.shutdown();
}

#[test]
fn duplicate_inflight_submission_attaches_to_the_running_job() {
    let (handle, addr) = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    // slow enough (full reroutes, 300 nets) that the duplicate lands
    // while the first copy is demonstrably still running
    let spec = ChipSpec {
        name: "converging".into(),
        num_nets: 300,
        utilization: 0.22,
        ..ChipSpec::small_test(5)
    };
    let doc = chip_doc_to_string(&ChipDoc::from_chip(&spec.generate()).unwrap()).unwrap();
    let path = "/jobs?iterations=4&incremental=false";
    let resp = client::request(&addr, "POST", path, doc.as_bytes()).unwrap();
    assert_eq!(resp.status, 201);
    let job = json_u64(&resp.text(), "job").unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::request(&addr, "GET", &format!("/jobs/{job}"), b"").unwrap();
        let text = resp.text();
        if json_str(&text, "state") == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running: {text}");
        std::thread::sleep(POLL);
    }
    // the identical submission coalesces onto the in-flight job
    let dup = client::request(&addr, "POST", path, doc.as_bytes()).unwrap();
    assert_eq!(dup.status, 200);
    let text = dup.text();
    assert_eq!(json_bool(&text, "coalesced"), Some(true), "attach body: {text}");
    assert_eq!(json_u64(&text, "job"), Some(job), "attached to the original job");
    // both clients poll the same job id; one route serves them both
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::request(&addr, "GET", &format!("/jobs/{job}"), b"").unwrap();
        let text = resp.text();
        if json_str(&text, "state") == Some("done") {
            break;
        }
        assert!(Instant::now() < deadline, "job never finished: {text}");
        std::thread::sleep(POLL);
    }
    let a = client::request(&addr, "GET", &format!("/jobs/{job}/result"), b"").unwrap();
    let b = client::request(&addr, "GET", &format!("/jobs/{job}/result"), b"").unwrap();
    assert_eq!(a.status, 200);
    assert_eq!(a.body, b.body, "attached clients must read identical bytes");
    // the attach is visible in the health counters
    let resp = client::request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(json_u64(&resp.text(), "coalesced"), Some(1));
    // and once the job is done, the cache takes over from coalescing
    let resp = client::request(&addr, "POST", path, doc.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(json_bool(&resp.text(), "cached"), Some(true));
    handle.shutdown();
}

#[test]
fn shutdown_drains_every_accepted_job() {
    let (handle, addr) = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    let doc = smoke_doc();
    for seed in 0..3 {
        let path = format!("/jobs?seed={seed}");
        let resp = client::request(&addr, "POST", &path, doc.as_bytes()).unwrap();
        assert_eq!(resp.status, 201);
    }
    let report = handle.shutdown();
    assert_eq!(report.done, 3, "drain must finish queued jobs, not drop them: {report:?}");
    assert_eq!((report.cancelled, report.failed), (0, 0));
}

#[test]
fn unknown_query_knob_is_rejected_up_front() {
    let (handle, addr) = start(ServeConfig { workers: 0, ..ServeConfig::default() });
    let resp = client::request(&addr, "POST", "/jobs?bogus=1", smoke_doc().as_bytes()).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("unknown router knob"));
    handle.shutdown();
}
