//! Incremental timing analysis: re-propagate only the cones of changed
//! arcs.
//!
//! [`TimingGraph::analyze`] rebuilds adjacency and walks the whole DAG
//! on every call — correct, but wasteful inside a rip-up & re-route
//! loop where a late iteration retimes only the handful of nets the
//! dirty-net scheduler actually rerouted. [`IncrementalSta`] is the
//! fast path behind it: it caches the topological order and CSR
//! adjacency once, keeps the last [`TimingReport`], and on
//! [`refresh`](IncrementalSta::refresh) re-propagates arrival times
//! through the *forward* cone and required times through the *backward*
//! cone of the arcs whose delay actually changed, stopping as soon as a
//! recomputed value is bit-identical to the cached one.
//!
//! # Exactness contract
//!
//! `refresh` is specified to be **bit-identical** to a fresh
//! [`TimingGraph::analyze`] over the same delays: every node it touches
//! is recomputed with the same reduction (same predecessor order, same
//! `max`/`min` sequence) the full pass uses, and propagation stops only
//! where the recomputed value has the same bits as the cached one — in
//! which case every downstream recomputation would reproduce its cached
//! value too. The router's incremental mode relies on this to stay
//! bit-identical to the full-reroute reference; `tests` pin it on
//! randomized DAGs and update sequences.
//!
//! # Examples
//!
//! ```
//! use cds_sta::{IncrementalSta, TimingGraph};
//!
//! let mut tg = TimingGraph::new(2);
//! let arc = tg.add_arc(0, 1, 10.0);
//! tg.set_input(0, 0.0);
//! tg.set_required(1, 12.0);
//! let mut sta = IncrementalSta::new(&tg);
//! assert_eq!(sta.report().ws, 2.0);
//! sta.set_arc_delay(arc, 15.0);
//! assert_eq!(sta.refresh().ws, -3.0);
//! ```

use crate::{ArcId, TimingGraph, TimingNodeId, TimingReport};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A timing engine that owns a DAG snapshot and refreshes its report
/// incrementally as arc delays change.
///
/// Construction takes one full [`TimingGraph::analyze`] pass; after
/// that, [`set_arc_delay`](Self::set_arc_delay) +
/// [`refresh`](Self::refresh) touch only the affected cones. The
/// structure of the DAG (arcs, inputs, endpoints) is frozen at
/// construction — only delays may change.
#[derive(Debug, Clone)]
pub struct IncrementalSta {
    num_nodes: usize,
    /// Per-arc `(from, to)`.
    arc_ends: Vec<(TimingNodeId, TimingNodeId)>,
    /// Per-arc delay (the mutable part of the DAG).
    delay: Vec<f64>,
    /// Topological position of each node.
    pos: Vec<u32>,
    /// CSR in-adjacency: for node `v`, `(pred, arc)` pairs in arc
    /// insertion order — the same order `analyze` reduces in.
    in_start: Vec<u32>,
    in_list: Vec<(TimingNodeId, ArcId)>,
    /// CSR out-adjacency, same ordering guarantee.
    out_start: Vec<u32>,
    out_list: Vec<(TimingNodeId, ArcId)>,
    /// Per-node declared arrival (max over declared inputs; `-inf` when
    /// the node is not an input).
    input_at: Vec<f64>,
    /// Per-node declared required (min over declarations; `+inf` when
    /// the node is not an endpoint).
    required_rat: Vec<f64>,
    /// Endpoint declarations in declaration order (with duplicates),
    /// matching `analyze`'s TNS accumulation order.
    endpoints: Vec<TimingNodeId>,
    report: TimingReport,
    /// Arcs whose delay changed since the last refresh.
    dirty: Vec<ArcId>,
    /// Scratch: nodes currently queued in a propagation heap.
    queued: Vec<bool>,
    /// Nodes recomputed by the last refresh (forward + backward cones).
    last_retimed: usize,
    /// Nodes recomputed across all refreshes.
    total_retimed: u64,
}

impl IncrementalSta {
    /// Builds the engine from a timing graph (one full analysis).
    ///
    /// # Panics
    ///
    /// Panics if the graph has a cycle.
    pub fn new(tg: &TimingGraph) -> Self {
        let n = tg.num_nodes();
        let order = tg.topo_order();
        let mut pos = vec![0u32; n];
        for (p, &v) in order.iter().enumerate() {
            pos[v as usize] = p as u32;
        }
        // counting-sort CSR keeps per-node neighbor order equal to arc
        // insertion order — the order analyze() reduces in
        let mut in_start = vec![0u32; n + 1];
        let mut out_start = vec![0u32; n + 1];
        for &(from, to, _) in &tg.arcs {
            in_start[to as usize + 1] += 1;
            out_start[from as usize + 1] += 1;
        }
        for v in 0..n {
            in_start[v + 1] += in_start[v];
            out_start[v + 1] += out_start[v];
        }
        let mut in_list = vec![(0u32, 0u32); tg.arcs.len()];
        let mut out_list = vec![(0u32, 0u32); tg.arcs.len()];
        let mut in_cur = in_start.clone();
        let mut out_cur = out_start.clone();
        for (a, &(from, to, _)) in tg.arcs.iter().enumerate() {
            in_list[in_cur[to as usize] as usize] = (from, a as ArcId);
            in_cur[to as usize] += 1;
            out_list[out_cur[from as usize] as usize] = (to, a as ArcId);
            out_cur[from as usize] += 1;
        }
        let mut input_at = vec![f64::NEG_INFINITY; n];
        for &(v, t) in &tg.inputs {
            input_at[v as usize] = input_at[v as usize].max(t);
        }
        let mut required_rat = vec![f64::INFINITY; n];
        for &(v, t) in &tg.required {
            required_rat[v as usize] = required_rat[v as usize].min(t);
        }
        IncrementalSta {
            num_nodes: n,
            arc_ends: tg.arcs.iter().map(|&(from, to, _)| (from, to)).collect(),
            delay: tg.arcs.iter().map(|&(_, _, d)| d).collect(),
            pos,
            in_start,
            in_list,
            out_start,
            out_list,
            input_at,
            required_rat,
            endpoints: tg.required.iter().map(|&(v, _)| v).collect(),
            report: tg.analyze(),
            dirty: Vec::new(),
            queued: vec![false; n],
            last_retimed: 0,
            total_retimed: 0,
        }
    }

    /// The report as of the last [`refresh`](Self::refresh) (or
    /// construction). Call `refresh` first if delays changed.
    pub fn report(&self) -> &TimingReport {
        &self.report
    }

    /// Updates an arc's delay. No-op (not even marked dirty) when the
    /// new delay is bit-identical to the current one.
    pub fn set_arc_delay(&mut self, arc: ArcId, delay: f64) {
        if self.delay[arc as usize].to_bits() != delay.to_bits() {
            self.delay[arc as usize] = delay;
            self.dirty.push(arc);
        }
    }

    /// Bulk [`set_arc_delay`](Self::set_arc_delay): one arc per delay,
    /// in order — how the router feeds a ripped net's contiguous
    /// sink-delay span straight from the routed forest (bit-unchanged
    /// delays are still not even marked dirty).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn set_arc_delays(&mut self, arcs: &[ArcId], delays: &[f64]) {
        assert_eq!(arcs.len(), delays.len(), "one delay per arc");
        for (&arc, &d) in arcs.iter().zip(delays) {
            self.set_arc_delay(arc, d);
        }
    }

    /// Number of pending dirty arcs.
    pub fn dirty_arcs(&self) -> usize {
        self.dirty.len()
    }

    /// Nodes recomputed by the last refresh.
    pub fn last_retimed(&self) -> usize {
        self.last_retimed
    }

    /// Nodes recomputed across all refreshes (the work counter the
    /// router's stats report).
    pub fn total_retimed(&self) -> u64 {
        self.total_retimed
    }

    fn in_arcs(&self, v: usize) -> &[(TimingNodeId, ArcId)] {
        &self.in_list[self.in_start[v] as usize..self.in_start[v + 1] as usize]
    }

    fn out_arcs(&self, v: usize) -> &[(TimingNodeId, ArcId)] {
        &self.out_list[self.out_start[v] as usize..self.out_start[v + 1] as usize]
    }

    /// Exactly `analyze`'s per-node arrival reduction.
    fn recompute_at(&self, v: usize) -> f64 {
        let mut at = self.input_at[v];
        for &(from, a) in self.in_arcs(v) {
            let fat = self.report.at[from as usize];
            if fat.is_finite() {
                at = at.max(fat + self.delay[a as usize]);
            }
        }
        at
    }

    /// Exactly `analyze`'s per-node required reduction.
    fn recompute_rat(&self, v: usize) -> f64 {
        let mut rat = self.required_rat[v];
        for &(to, a) in self.out_arcs(v) {
            let trat = self.report.rat[to as usize];
            if trat.is_finite() {
                rat = rat.min(trat - self.delay[a as usize]);
            }
        }
        rat
    }

    /// Re-propagates the cones of all dirty arcs and returns the
    /// updated report. Bit-identical to a fresh
    /// [`TimingGraph::analyze`] over the same delays (see the module
    /// docs).
    pub fn refresh(&mut self) -> &TimingReport {
        self.last_retimed = 0;
        if self.dirty.is_empty() {
            return &self.report;
        }

        // Forward cone: recompute arrivals in ascending topological
        // order starting at the heads of dirty arcs. Heap order
        // guarantees a node is popped only after every changed
        // predecessor was processed, so one full recompute per node
        // suffices and reproduces analyze()'s reduction exactly.
        let mut heap: BinaryHeap<Reverse<(u32, TimingNodeId)>> = BinaryHeap::new();
        for i in 0..self.dirty.len() {
            let (_, to) = self.arc_ends[self.dirty[i] as usize];
            if !self.queued[to as usize] {
                self.queued[to as usize] = true;
                heap.push(Reverse((self.pos[to as usize], to)));
            }
        }
        while let Some(Reverse((_, v))) = heap.pop() {
            let v = v as usize;
            self.queued[v] = false;
            self.last_retimed += 1;
            let new_at = self.recompute_at(v);
            if new_at.to_bits() != self.report.at[v].to_bits() {
                self.report.at[v] = new_at;
                for i in self.out_start[v] as usize..self.out_start[v + 1] as usize {
                    let (to, _) = self.out_list[i];
                    if !self.queued[to as usize] {
                        self.queued[to as usize] = true;
                        heap.push(Reverse((self.pos[to as usize], to)));
                    }
                }
            }
        }

        // Backward cone: recompute requireds in descending topological
        // order starting at the tails of dirty arcs.
        let mut heap: BinaryHeap<(u32, TimingNodeId)> = BinaryHeap::new();
        for i in 0..self.dirty.len() {
            let (from, _) = self.arc_ends[self.dirty[i] as usize];
            if !self.queued[from as usize] {
                self.queued[from as usize] = true;
                heap.push((self.pos[from as usize], from));
            }
        }
        while let Some((_, v)) = heap.pop() {
            let v = v as usize;
            self.queued[v] = false;
            self.last_retimed += 1;
            let new_rat = self.recompute_rat(v);
            if new_rat.to_bits() != self.report.rat[v].to_bits() {
                self.report.rat[v] = new_rat;
                for i in self.in_start[v] as usize..self.in_start[v + 1] as usize {
                    let (from, _) = self.in_list[i];
                    if !self.queued[from as usize] {
                        self.queued[from as usize] = true;
                        heap.push((self.pos[from as usize], from));
                    }
                }
            }
        }
        self.dirty.clear();
        self.total_retimed += self.last_retimed as u64;

        // Slack, WS and TNS are cheap full scans in the same order
        // analyze() uses — O(nodes), no edge work.
        let mut ws = f64::INFINITY;
        for v in 0..self.num_nodes {
            let (at, rat) = (self.report.at[v], self.report.rat[v]);
            self.report.slack[v] =
                if at.is_finite() && rat.is_finite() { rat - at } else { f64::INFINITY };
            if self.report.slack[v] < ws {
                ws = self.report.slack[v];
            }
        }
        self.report.ws = if ws.is_finite() { ws } else { 0.0 };
        let mut tns = 0.0;
        for &v in &self.endpoints {
            let s = self.report.slack[v as usize];
            if s.is_finite() && s < 0.0 {
                tns += s;
            }
        }
        self.report.tns = tns;
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_reports_bit_identical(a: &TimingReport, b: &TimingReport, ctx: &str) {
        assert_eq!(a.ws.to_bits(), b.ws.to_bits(), "{ctx}: ws");
        assert_eq!(a.tns.to_bits(), b.tns.to_bits(), "{ctx}: tns");
        for v in 0..a.at.len() {
            assert_eq!(a.at[v].to_bits(), b.at[v].to_bits(), "{ctx}: at[{v}]");
            assert_eq!(a.rat[v].to_bits(), b.rat[v].to_bits(), "{ctx}: rat[{v}]");
            assert_eq!(a.slack[v].to_bits(), b.slack[v].to_bits(), "{ctx}: slack[{v}]");
        }
    }

    /// A deterministic pseudo-random layered DAG shaped like the
    /// router's timing graphs (chains with fan-out), plus its arc list.
    fn random_dag(seed: u64, nodes: usize) -> TimingGraph {
        let mut tg = TimingGraph::new(nodes);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for v in 1..nodes as u32 {
            // 1-3 predecessors from earlier nodes keeps it acyclic
            let preds = 1 + (next() % 3) as usize;
            for _ in 0..preds.min(v as usize) {
                let from = (next() % v as u64) as u32;
                let d = (next() % 500) as f64 / 10.0;
                tg.add_arc(from, v, d);
            }
        }
        for v in 0..nodes as u32 {
            if next() % 5 == 0 {
                tg.set_input(v, (next() % 100) as f64 / 10.0);
            }
            if next() % 4 == 0 {
                tg.set_required(v, (next() % 3000) as f64 / 10.0);
            }
        }
        tg
    }

    #[test]
    fn fresh_engine_matches_analyze() {
        for seed in [1, 7, 42] {
            let tg = random_dag(seed, 80);
            let sta = IncrementalSta::new(&tg);
            assert_reports_bit_identical(sta.report(), &tg.analyze(), &format!("seed {seed}"));
        }
    }

    #[test]
    fn refresh_matches_full_analyze_over_random_update_sequences() {
        for seed in [3u64, 19, 1234] {
            let mut tg = random_dag(seed, 120);
            let arcs = tg.arcs.len();
            let mut sta = IncrementalSta::new(&tg);
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for round in 0..30 {
                // change a small batch of arcs (sometimes to the same value)
                for _ in 0..1 + next() % 6 {
                    let a = (next() % arcs as u64) as ArcId;
                    let d = if next() % 4 == 0 {
                        tg.arcs[a as usize].2 // no-op update
                    } else {
                        (next() % 800) as f64 / 16.0
                    };
                    tg.set_arc_delay(a, d);
                    sta.set_arc_delay(a, d);
                }
                let inc = sta.refresh().clone();
                assert_reports_bit_identical(
                    &inc,
                    &tg.analyze(),
                    &format!("seed {seed} round {round}"),
                );
            }
        }
    }

    #[test]
    fn noop_updates_retime_nothing() {
        let tg = random_dag(5, 60);
        let mut sta = IncrementalSta::new(&tg);
        for a in 0..tg.arcs.len() as ArcId {
            let d = tg.arcs[a as usize].2;
            sta.set_arc_delay(a, d);
        }
        assert_eq!(sta.dirty_arcs(), 0);
        sta.refresh();
        assert_eq!(sta.last_retimed(), 0);
    }

    #[test]
    fn localized_change_touches_a_small_cone() {
        // a long chain: changing the last arc must not re-propagate the
        // whole graph forward
        let n = 200;
        let mut tg = TimingGraph::new(n);
        let mut arcs = Vec::new();
        for v in 0..n as u32 - 1 {
            arcs.push(tg.add_arc(v, v + 1, 1.0));
        }
        tg.set_input(0, 0.0);
        tg.set_required(n as u32 - 1, 500.0);
        let mut sta = IncrementalSta::new(&tg);
        let last = *arcs.last().unwrap();
        sta.set_arc_delay(last, 2.0);
        sta.refresh();
        // forward cone: one node; backward cone: the whole chain (rat
        // shifts), so just bound it by the obvious worst case
        assert!(sta.last_retimed() <= n + 1, "retimed {}", sta.last_retimed());
        tg.set_arc_delay(last, 2.0);
        assert_reports_bit_identical(sta.report(), &tg.analyze(), "chain");
        // a second refresh with nothing dirty is free
        sta.refresh();
        assert_eq!(sta.last_retimed(), 0);
    }
}
