#![forbid(unsafe_code)]
//! Static timing analysis (lite) for the timing-constrained router.
//!
//! The router's Lagrangean loop needs slacks: worst slack (WS) and total
//! negative slack (TNS) are the headline numbers of Tables IV/V, and
//! per-sink slacks drive the delay weights `w(t)` of the cost-distance
//! subproblem. This is a standard arrival/required propagation over a
//! timing DAG whose arc delays the router updates after every routing
//! iteration. [`analyze`](TimingGraph::analyze) is the full reference
//! pass; [`IncrementalSta`] is the bit-identical fast path behind it,
//! re-propagating only the cones of arcs whose delay changed — what
//! the router's incremental mode uses.
//!
//! # Examples
//!
//! ```
//! use cds_sta::TimingGraph;
//!
//! // in --arc(10ps)--> out, required at 12ps: slack +2
//! let mut tg = TimingGraph::new(2);
//! tg.add_arc(0, 1, 10.0);
//! tg.set_input(0, 0.0);
//! tg.set_required(1, 12.0);
//! let rep = tg.analyze();
//! assert_eq!(rep.slack[1], 2.0);
//! assert_eq!(rep.ws, 2.0);
//! assert_eq!(rep.tns, 0.0);
//! ```

mod incremental;

pub use incremental::IncrementalSta;

/// Dense timing node id.
pub type TimingNodeId = u32;
/// Dense timing arc id.
pub type ArcId = u32;

/// A timing DAG with mutable arc delays.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    num_nodes: usize,
    pub(crate) arcs: Vec<(TimingNodeId, TimingNodeId, f64)>,
    pub(crate) inputs: Vec<(TimingNodeId, f64)>,
    pub(crate) required: Vec<(TimingNodeId, f64)>,
}

/// The result of [`TimingGraph::analyze`].
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Arrival time per node (`-inf` if unreachable from any input).
    pub at: Vec<f64>,
    /// Required time per node (`+inf` if unconstrained).
    pub rat: Vec<f64>,
    /// `rat − at` per node (`+inf` where unconstrained/unreached).
    pub slack: Vec<f64>,
    /// Worst (minimum) slack over all constrained nodes; 0 when nothing
    /// is constrained.
    pub ws: f64,
    /// Total negative slack: sum of negative slacks over *endpoints*
    /// (nodes with an explicit required time).
    pub tns: f64,
}

impl TimingGraph {
    /// An empty DAG over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        TimingGraph { num_nodes, arcs: Vec::new(), inputs: Vec::new(), required: Vec::new() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Adds a timing arc with the given delay; returns its id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints.
    pub fn add_arc(&mut self, from: TimingNodeId, to: TimingNodeId, delay: f64) -> ArcId {
        assert!((from as usize) < self.num_nodes && (to as usize) < self.num_nodes);
        self.arcs.push((from, to, delay));
        (self.arcs.len() - 1) as ArcId
    }

    /// Updates an arc's delay (the router does this every iteration).
    pub fn set_arc_delay(&mut self, arc: ArcId, delay: f64) {
        self.arcs[arc as usize].2 = delay;
    }

    /// Bulk [`set_arc_delay`](Self::set_arc_delay): one arc per delay,
    /// in order — how the router feeds a net's contiguous sink-delay
    /// span straight from the routed forest.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn set_arc_delays(&mut self, arcs: &[ArcId], delays: &[f64]) {
        assert_eq!(arcs.len(), delays.len(), "one delay per arc");
        for (&arc, &d) in arcs.iter().zip(delays) {
            self.set_arc_delay(arc, d);
        }
    }

    /// Declares a primary input with the given arrival time.
    pub fn set_input(&mut self, node: TimingNodeId, at: f64) {
        self.inputs.push((node, at));
    }

    /// Declares an endpoint with the given required arrival time.
    pub fn set_required(&mut self, node: TimingNodeId, rat: f64) {
        self.required.push((node, rat));
    }

    /// Topological order of the DAG (Kahn).
    ///
    /// # Panics
    ///
    /// Panics if the graph has a cycle.
    pub(crate) fn topo_order(&self) -> Vec<TimingNodeId> {
        let mut indeg = vec![0usize; self.num_nodes];
        for &(_, to, _) in &self.arcs {
            indeg[to as usize] += 1;
        }
        let mut queue: Vec<TimingNodeId> =
            (0..self.num_nodes as TimingNodeId).filter(|&v| indeg[v as usize] == 0).collect();
        let mut out_adj: Vec<Vec<(TimingNodeId, f64)>> = vec![Vec::new(); self.num_nodes];
        for &(from, to, d) in &self.arcs {
            out_adj[from as usize].push((to, d));
        }
        let mut order = Vec::with_capacity(self.num_nodes);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &(w, _) in &out_adj[v as usize] {
                indeg[w as usize] -= 1;
                if indeg[w as usize] == 0 {
                    queue.push(w);
                }
            }
        }
        assert_eq!(order.len(), self.num_nodes, "timing graph has a cycle");
        order
    }

    /// Propagates arrivals and requireds; returns the report.
    pub fn analyze(&self) -> TimingReport {
        let order = self.topo_order();
        let mut at = vec![f64::NEG_INFINITY; self.num_nodes];
        for &(v, t) in &self.inputs {
            at[v as usize] = at[v as usize].max(t);
        }
        // nodes with no incoming arcs and no declared input stay at
        // -inf (unreached); the router declares all chain heads
        // explicitly.
        let mut out_adj: Vec<Vec<(TimingNodeId, f64)>> = vec![Vec::new(); self.num_nodes];
        let mut in_adj: Vec<Vec<(TimingNodeId, f64)>> = vec![Vec::new(); self.num_nodes];
        for &(from, to, d) in &self.arcs {
            out_adj[from as usize].push((to, d));
            in_adj[to as usize].push((from, d));
        }
        for &v in &order {
            for &(from, d) in &in_adj[v as usize] {
                if at[from as usize].is_finite() {
                    at[v as usize] = at[v as usize].max(at[from as usize] + d);
                }
            }
        }
        let mut rat = vec![f64::INFINITY; self.num_nodes];
        for &(v, t) in &self.required {
            rat[v as usize] = rat[v as usize].min(t);
        }
        for &v in order.iter().rev() {
            for &(to, d) in &out_adj[v as usize] {
                if rat[to as usize].is_finite() {
                    rat[v as usize] = rat[v as usize].min(rat[to as usize] - d);
                }
            }
        }
        let mut slack = vec![f64::INFINITY; self.num_nodes];
        let mut ws = f64::INFINITY;
        for v in 0..self.num_nodes {
            if at[v].is_finite() && rat[v].is_finite() {
                slack[v] = rat[v] - at[v];
                ws = ws.min(slack[v]);
            }
        }
        if !ws.is_finite() {
            ws = 0.0;
        }
        let mut tns = 0.0;
        for &(v, _) in &self.required {
            let s = slack[v as usize];
            if s.is_finite() && s < 0.0 {
                tns += s;
            }
        }
        TimingReport { at, rat, slack, ws, tns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// chain: 0 →(5) 1 →(5) 2, with a side branch 1 →(20) 3
    fn diamondish() -> TimingGraph {
        let mut tg = TimingGraph::new(4);
        tg.add_arc(0, 1, 5.0);
        tg.add_arc(1, 2, 5.0);
        tg.add_arc(1, 3, 20.0);
        tg.set_input(0, 0.0);
        tg.set_required(2, 8.0);
        tg.set_required(3, 20.0);
        tg
    }

    #[test]
    fn arrivals_take_longest_path() {
        let rep = diamondish().analyze();
        assert_eq!(rep.at[2], 10.0);
        assert_eq!(rep.at[3], 25.0);
    }

    #[test]
    fn ws_and_tns() {
        let rep = diamondish().analyze();
        // endpoint slacks: node2 = 8-10 = -2, node3 = 20-25 = -5;
        // internal slacks are no worse than -5
        assert_eq!(rep.ws, -5.0);
        assert_eq!(rep.tns, -7.0, "endpoint slacks -2 + -5");
    }

    #[test]
    fn required_propagates_backwards() {
        let rep = diamondish().analyze();
        // rat[1] = min(8-5, 20-20) = 0 → slack = 0 - 5 = -5? at[1] = 5 → -5… wait
        assert_eq!(rep.rat[1], 0.0);
        assert_eq!(rep.slack[1], -5.0);
        assert_eq!(rep.rat[0], -5.0);
    }

    #[test]
    fn delay_update_changes_slack() {
        let mut tg = TimingGraph::new(2);
        let a = tg.add_arc(0, 1, 10.0);
        tg.set_input(0, 0.0);
        tg.set_required(1, 10.0);
        assert_eq!(tg.analyze().ws, 0.0);
        tg.set_arc_delay(a, 13.0);
        assert_eq!(tg.analyze().ws, -3.0);
        assert_eq!(tg.analyze().tns, -3.0);
    }

    #[test]
    fn unconstrained_graph_has_zero_ws() {
        let mut tg = TimingGraph::new(3);
        tg.add_arc(0, 1, 1.0);
        tg.set_input(0, 0.0);
        let rep = tg.analyze();
        assert_eq!(rep.ws, 0.0);
        assert_eq!(rep.tns, 0.0);
        assert!(rep.slack[1].is_infinite());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        let mut tg = TimingGraph::new(2);
        tg.add_arc(0, 1, 1.0);
        tg.add_arc(1, 0, 1.0);
        let _ = tg.analyze();
    }

    #[test]
    fn tns_counts_endpoints_not_internal_nodes() {
        // two endpoints behind a shared late node must both count
        let mut tg = TimingGraph::new(4);
        tg.add_arc(0, 1, 10.0);
        tg.add_arc(1, 2, 0.0);
        tg.add_arc(1, 3, 0.0);
        tg.set_input(0, 0.0);
        tg.set_required(2, 6.0);
        tg.set_required(3, 8.0);
        let rep = tg.analyze();
        assert_eq!(rep.tns, -4.0 + -2.0);
        assert_eq!(rep.ws, -4.0);
    }
}
