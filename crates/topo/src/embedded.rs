//! Trees embedded into the global routing graph, and the paper's
//! objective function.
//!
//! An [`EmbeddedTree`] is an r-arborescence whose nodes are mapped to
//! graph vertices and whose arcs carry explicit edge paths. Its
//! [`evaluate`](EmbeddedTree::evaluate) method computes
//!
//! ```text
//! cost(T) = Σ_{e∈T} c(e) + Σ_{t∈S} w(t)·delay_T(r, t)        (1)
//! delay_T(r,t) = Σ_{(u,v)∈T[r,t]} ( d(e) + λ_v·d_bif )       (3)
//! ```
//!
//! with λ chosen by Eq. (2) at every proper bifurcation.

use crate::forest::{self, TreeRead, TreeSink};
use crate::penalty::BifurcationConfig;
use crate::topology::{NodeId, NodeKind};
use cds_graph::{EdgeId, EdgeKind, SteinerGraph, VertexId};

/// One arc of an embedded tree: the path from the parent's vertex to the
/// node's vertex. May be empty when both map to the same vertex.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EmbeddedArc {
    /// Edges in parent→node order.
    pub edges: Vec<EdgeId>,
}

/// An r-arborescence embedded in a routing graph. Node 0 is the root.
///
/// Invariants (checked by [`validate`](Self::validate)):
/// * every non-root node's path walks from its parent's vertex to its own,
/// * sinks are leaves and internal nodes have at most two children
///   (bifurcation compatibility — the solvers all produce such trees).
#[derive(Debug, Clone)]
pub struct EmbeddedTree {
    kinds: Vec<NodeKind>,
    vertices: Vec<VertexId>,
    parent: Vec<Option<NodeId>>,
    paths: Vec<EmbeddedArc>,
    children: Vec<Vec<NodeId>>,
}

/// Everything [`EmbeddedTree::evaluate`] computes in one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// `Σ_{e∈T} c(e)` — the congestion part of Eq. (1).
    pub connection_cost: f64,
    /// `Σ_t w(t)·delay(t)` — the delay part of Eq. (1).
    pub delay_cost: f64,
    /// `connection_cost + delay_cost`.
    pub total: f64,
    /// delay\[sink index\] per Eq. (3); `NaN` for sinks absent from the
    /// tree (callers should treat that as a bug — `validate` catches it).
    pub sink_delays: Vec<f64>,
    /// Number of proper bifurcations (nodes with two children).
    pub bifurcations: usize,
}

impl EmbeddedTree {
    /// A tree consisting only of the root at `vertex`.
    pub fn new(vertex: VertexId) -> Self {
        EmbeddedTree {
            kinds: vec![NodeKind::Root],
            vertices: vec![vertex],
            parent: vec![None],
            paths: vec![EmbeddedArc::default()],
            children: vec![Vec::new()],
        }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of `v`.
    pub fn node_kind(&self, v: NodeId) -> NodeKind {
        self.kinds[v as usize]
    }

    /// Graph vertex of `v`.
    pub fn vertex(&self, v: NodeId) -> VertexId {
        self.vertices[v as usize]
    }

    /// Parent of `v`.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v as usize]
    }

    /// Children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v as usize]
    }

    /// Path (from the parent's vertex) of `v`.
    pub fn path(&self, v: NodeId) -> &EmbeddedArc {
        &self.paths[v as usize]
    }

    /// (sink index, node) pairs for all sinks.
    pub fn sink_nodes(&self) -> Vec<(usize, NodeId)> {
        self.kinds
            .iter()
            .enumerate()
            .filter_map(|(i, k)| match k {
                NodeKind::Sink(s) => Some((*s, i as NodeId)),
                _ => None,
            })
            .collect()
    }

    /// Adds a node under `parent` reached by `path`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown or `kind` is `Root`.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        vertex: VertexId,
        parent: NodeId,
        path: Vec<EdgeId>,
    ) -> NodeId {
        assert!((parent as usize) < self.kinds.len(), "unknown parent");
        assert!(kind != NodeKind::Root, "a tree has exactly one root");
        let id = self.kinds.len() as NodeId;
        self.kinds.push(kind);
        self.vertices.push(vertex);
        self.parent.push(Some(parent));
        self.paths.push(EmbeddedArc { edges: path });
        self.children.push(Vec::new());
        self.children[parent as usize].push(id);
        id
    }

    /// All edges of the tree (one entry per use).
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.paths.iter().flat_map(|p| p.edges.iter().copied())
    }

    /// Total wirelength in gcell units (sum of edge lengths).
    pub fn wirelength<G: SteinerGraph + ?Sized>(&self, g: &G) -> f64 {
        self.edges().map(|e| g.edge_attrs(e).length).sum()
    }

    /// Number of via edges used.
    pub fn via_count<G: SteinerGraph + ?Sized>(&self, g: &G) -> usize {
        self.edges().filter(|&e| g.edge_attrs(e).kind == EdgeKind::Via).count()
    }

    /// Nodes in depth-first preorder.
    pub fn dfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.num_nodes());
        let mut stack = vec![self.root()];
        while let Some(v) = stack.pop() {
            order.push(v);
            for &c in self.children(v).iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Total sink delay weight below each node.
    pub fn subtree_weights(&self, weights: &[f64]) -> Vec<f64> {
        let order = self.dfs_order();
        let mut w = vec![0.0f64; self.num_nodes()];
        for &v in order.iter().rev() {
            if let NodeKind::Sink(s) = self.node_kind(v) {
                w[v as usize] += weights[s];
            }
            for &c in self.children(v).iter() {
                let wc = w[c as usize];
                w[v as usize] += wc;
            }
        }
        w
    }

    /// Number of proper bifurcations on the root→sink path of `sink_node`
    /// (the quantity Fig. 1 of the paper illustrates).
    pub fn bifurcations_on_path(&self, sink_node: NodeId) -> usize {
        let mut count = 0;
        let mut cur = self.parent(sink_node);
        while let Some(v) = cur {
            if self.children(v).len() == 2 {
                count += 1;
            }
            cur = self.parent(v);
        }
        count
    }

    /// Evaluates the paper's objective, Eq. (1) with the delay model of
    /// Eq. (3). `c` and `d` are dense per-edge cost/delay slices;
    /// `weights` is indexed by sink index.
    ///
    /// # Panics
    ///
    /// Panics if a node has more than two children (evaluate only
    /// bifurcation-compatible trees) or if a sink index is out of range
    /// of `weights`.
    pub fn evaluate(
        &self,
        c: &[f64],
        d: &[f64],
        weights: &[f64],
        bif: &BifurcationConfig,
    ) -> Evaluation {
        forest::evaluate_owned(self, c, d, weights, bif)
    }

    /// Checks that every arc's path actually walks from the parent vertex
    /// to the node vertex in `g`, that sinks `0..num_sinks` each appear
    /// exactly once as leaves, and that internal nodes have ≤ 2 children.
    pub fn validate<G: SteinerGraph + ?Sized>(
        &self,
        g: &G,
        num_sinks: usize,
    ) -> Result<(), String> {
        forest::validate_tree(self, g, num_sinks)
    }

    /// Builds an owned tree from a forest [`TreeView`](forest::TreeView)
    /// (node ids, child order, and edge order preserved).
    pub fn from_view(view: &forest::TreeView<'_>) -> Self {
        view.to_embedded()
    }
}

impl TreeRead for EmbeddedTree {
    fn num_nodes(&self) -> usize {
        EmbeddedTree::num_nodes(self)
    }

    fn node_kind(&self, v: NodeId) -> NodeKind {
        EmbeddedTree::node_kind(self, v)
    }

    fn vertex(&self, v: NodeId) -> VertexId {
        EmbeddedTree::vertex(self, v)
    }

    fn parent(&self, v: NodeId) -> Option<NodeId> {
        EmbeddedTree::parent(self, v)
    }

    fn children(&self, v: NodeId) -> &[NodeId] {
        EmbeddedTree::children(self, v)
    }

    fn path_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.paths[v as usize].edges
    }
}

impl TreeSink for EmbeddedTree {
    fn root_node(&self) -> NodeId {
        EmbeddedTree::root(self)
    }

    fn push_node(
        &mut self,
        kind: NodeKind,
        vertex: VertexId,
        parent: NodeId,
        path: &[EdgeId],
    ) -> NodeId {
        self.add_node(kind, vertex, parent, path.to_vec())
    }

    fn child_count(&self, node: NodeId) -> usize {
        EmbeddedTree::children(self, node).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::{EdgeAttrs, Graph, GraphBuilder};

    /// 0 -1- 1 -2- 2 -3- 3 line graph with edge ids 0, 1, 2 and
    /// cost 1, delay 10 each.
    fn line4() -> Graph {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1, EdgeAttrs::wire(1.0, 10.0));
        }
        b.build()
    }

    #[test]
    fn single_sink_objective() {
        let g = line4();
        let (c, d) = (g.base_costs(), g.delays());
        let mut t = EmbeddedTree::new(0);
        t.add_node(NodeKind::Sink(0), 3, t.root(), vec![0, 1, 2]);
        t.validate(&g, 1).unwrap();
        let ev = t.evaluate(&c, &d, &[2.0], &BifurcationConfig::ZERO);
        assert_eq!(ev.connection_cost, 3.0);
        assert_eq!(ev.sink_delays[0], 30.0);
        assert_eq!(ev.delay_cost, 60.0);
        assert_eq!(ev.total, 63.0);
        assert_eq!(ev.bifurcations, 0);
    }

    #[test]
    fn bifurcation_penalty_applied_at_branch() {
        // root at 1; steiner at 1 (empty path); two sinks at 0 and 3
        let g = line4();
        let (c, d) = (g.base_costs(), g.delays());
        let mut t = EmbeddedTree::new(1);
        let s = t.add_node(NodeKind::Steiner, 1, t.root(), vec![]);
        t.add_node(NodeKind::Sink(0), 0, s, vec![0]);
        t.add_node(NodeKind::Sink(1), 3, s, vec![1, 2]);
        t.validate(&g, 2).unwrap();
        let bif = BifurcationConfig::new(6.0, 0.25);
        // weights: sink0 heavy → λ0 = 0.25, λ1 = 0.75
        let ev = t.evaluate(&c, &d, &[5.0, 1.0], &bif);
        assert_eq!(ev.bifurcations, 1);
        assert!((ev.sink_delays[0] - (10.0 + 0.25 * 6.0)).abs() < 1e-9);
        assert!((ev.sink_delays[1] - (20.0 + 0.75 * 6.0)).abs() < 1e-9);
        assert!((ev.connection_cost - 3.0).abs() < 1e-9);
        let want_delay_cost = 5.0 * (10.0 + 1.5) + 1.0 * (20.0 + 4.5);
        assert!((ev.delay_cost - want_delay_cost).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_broken_path() {
        let g = line4();
        let mut t = EmbeddedTree::new(0);
        t.add_node(NodeKind::Sink(0), 3, t.root(), vec![0, 2]); // gap
        assert!(t.validate(&g, 1).is_err());
    }

    #[test]
    fn validate_rejects_missing_or_duplicate_sinks() {
        let g = line4();
        let mut t = EmbeddedTree::new(0);
        t.add_node(NodeKind::Sink(0), 1, t.root(), vec![0]);
        assert!(t.validate(&g, 2).is_err(), "sink 1 missing");
        let mut t2 = EmbeddedTree::new(0);
        t2.add_node(NodeKind::Sink(0), 1, t2.root(), vec![0]);
        let s = t2.add_node(NodeKind::Steiner, 1, t2.root(), vec![0]);
        t2.add_node(NodeKind::Sink(0), 2, s, vec![1]);
        assert!(t2.validate(&g, 1).is_err(), "sink 0 duplicated");
    }

    #[test]
    fn bifurcations_on_path_counts_branches() {
        let g = line4();
        let mut t = EmbeddedTree::new(0);
        let s1 = t.add_node(NodeKind::Steiner, 1, t.root(), vec![0]);
        t.add_node(NodeKind::Sink(0), 1, s1, vec![]);
        let s2 = t.add_node(NodeKind::Steiner, 2, s1, vec![1]);
        t.add_node(NodeKind::Sink(1), 2, s2, vec![]);
        let sink2 = t.add_node(NodeKind::Sink(2), 3, s2, vec![2]);
        assert_eq!(t.bifurcations_on_path(sink2), 2);
        let _ = g;
    }

    #[test]
    fn empty_paths_are_fine() {
        let g = line4();
        let (c, d) = (g.base_costs(), g.delays());
        let mut t = EmbeddedTree::new(2);
        t.add_node(NodeKind::Sink(0), 2, t.root(), vec![]);
        t.validate(&g, 1).unwrap();
        let ev = t.evaluate(&c, &d, &[1.0], &BifurcationConfig::ZERO);
        assert_eq!(ev.total, 0.0);
    }
}
