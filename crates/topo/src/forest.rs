//! `RoutedForest` — a struct-of-arrays arena for whole populations of
//! embedded trees.
//!
//! A rip-up & re-route run keeps one routed tree per net alive at all
//! times, and rewrites a changing subset of them every iteration. Owned
//! [`EmbeddedTree`]s pay for that workload with allocator churn — every
//! tree carries a `Vec` per node (children list, arc path), so routing a
//! net allocates O(nodes) times just to store the *output*. The forest
//! flattens all of it into shared slabs:
//!
//! * node kinds / vertices / parents — one slab each, trees occupy
//!   contiguous ranges and address their nodes with tree-local
//!   [`NodeId`]s (0 is always the root, exactly like `EmbeddedTree`);
//! * arc paths — one shared `EdgeId` slab, each node holding an
//!   `(offset, len)` span; a tree's edges are one contiguous range
//!   (its nodes are appended in order), so walking a whole tree's edges
//!   is a linear scan;
//! * children — a CSR `(offset, len)` pair per node into a shared index
//!   slab, replacing the per-node `Vec<NodeId>`;
//! * per-tree summary payloads a router keeps next to each tree — sink
//!   delays and `(edge, tracks)` used-edge lists — as spans into two
//!   more shared slabs, plus scalar wirelength/via totals.
//!
//! [`TreeView`] is a cheap `Copy` handle exposing the `EmbeddedTree`
//! read API (`evaluate`, `validate`, wirelength, via count) over a slot;
//! the shared algorithms are generic over [`TreeRead`], so the owned and
//! arena forms are bit-identical by construction. Replacing a slot's
//! tree appends the new spans and retires the old ones as garbage;
//! [`compact`](RoutedForest::compact) copies the live trees into a
//! second, retained buffer and swaps — double buffering, so steady-state
//! rip-up loops never return to the allocator.
//!
//! The forest only changes *where* tree bytes live, never their values
//! or enumeration order: node ids, child order, and edge order are
//! identical to the owned `EmbeddedTree` form (`tests/forest.rs` pins
//! the whole pipeline against the owned reference path).

use crate::embedded::{EmbeddedTree, Evaluation};
use crate::penalty::{lambda_split, BifurcationConfig};
use crate::topology::{NodeId, NodeKind};
use cds_graph::{EdgeId, EdgeKind, SteinerGraph, VertexId};

const NO_NODE: NodeId = NodeId::MAX;

/// Read access to one embedded tree — the interface the shared
/// evaluation/validation algorithms are generic over, implemented by
/// both the owned [`EmbeddedTree`] and the arena [`TreeView`].
///
/// Node ids are tree-local: `0` is the root, children slices preserve
/// attachment order, and `path_edges(v)` is the arc walked from the
/// parent's vertex to `v`'s vertex.
pub trait TreeRead {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// Kind of `v`.
    fn node_kind(&self, v: NodeId) -> NodeKind;
    /// Graph vertex of `v`.
    fn vertex(&self, v: NodeId) -> VertexId;
    /// Parent of `v` (`None` for the root).
    fn parent(&self, v: NodeId) -> Option<NodeId>;
    /// Children of `v`, in attachment order.
    fn children(&self, v: NodeId) -> &[NodeId];
    /// Path (from the parent's vertex) of `v`.
    fn path_edges(&self, v: NodeId) -> &[EdgeId];
}

/// The scalar outputs of one objective evaluation —
/// [`Evaluation`] minus the owned `sink_delays` vector, which
/// [`evaluate_into`] leaves in the caller's [`EvalScratch`] so hot loops
/// can reuse one buffer across millions of evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalTotals {
    /// `Σ_{e∈T} c(e)` — the congestion part of Eq. (1).
    pub connection_cost: f64,
    /// `Σ_t w(t)·delay(t)` — the delay part of Eq. (1).
    pub delay_cost: f64,
    /// `connection_cost + delay_cost`.
    pub total: f64,
    /// Number of proper bifurcations.
    pub bifurcations: usize,
}

/// Reusable buffers for [`evaluate_into`]: DFS order, subtree weights,
/// per-node delays, and the per-sink delay output. All grow to the
/// largest tree evaluated and stay warm.
#[derive(Debug, Default, Clone)]
pub struct EvalScratch {
    order: Vec<NodeId>,
    stack: Vec<NodeId>,
    sub_w: Vec<f64>,
    delay: Vec<f64>,
    /// delay\[sink index\] per Eq. (3) after a call; `NaN` for sinks
    /// absent from the tree.
    pub sink_delays: Vec<f64>,
}

/// Evaluates the paper's objective (Eq. (1) with the delay model of
/// Eq. (3)) over any [`TreeRead`], writing per-sink delays into
/// `s.sink_delays`. Bit-identical to the historical
/// `EmbeddedTree::evaluate` (which now delegates here).
///
/// # Panics
///
/// Panics if a node has more than two children or a sink index is out
/// of range of `weights`.
pub fn evaluate_into<T: TreeRead + ?Sized>(
    t: &T,
    c: &[f64],
    d: &[f64],
    weights: &[f64],
    bif: &BifurcationConfig,
    s: &mut EvalScratch,
) -> EvalTotals {
    let n = t.num_nodes();
    let mut connection_cost = 0.0f64;
    for v in 0..n as NodeId {
        for &e in t.path_edges(v) {
            connection_cost += c[e as usize];
        }
    }
    // depth-first preorder, shared by the weight and delay passes
    s.order.clear();
    s.stack.clear();
    s.stack.push(0);
    while let Some(v) = s.stack.pop() {
        s.order.push(v);
        for &ch in t.children(v).iter().rev() {
            s.stack.push(ch);
        }
    }
    // total sink delay weight below each node
    s.sub_w.clear();
    s.sub_w.resize(n, 0.0);
    for &v in s.order.iter().rev() {
        if let NodeKind::Sink(si) = t.node_kind(v) {
            s.sub_w[v as usize] += weights[si];
        }
        for &ch in t.children(v).iter() {
            let wc = s.sub_w[ch as usize];
            s.sub_w[v as usize] += wc;
        }
    }
    // delays with λ penalties at proper bifurcations
    s.delay.clear();
    s.delay.resize(n, 0.0);
    let mut bifurcations = 0usize;
    for &v in &s.order {
        let kids = t.children(v);
        assert!(kids.len() <= 2, "tree is not bifurcation compatible");
        let lambdas: [f64; 2] = if kids.len() == 2 {
            bifurcations += 1;
            let (lx, ly) =
                lambda_split(s.sub_w[kids[0] as usize], s.sub_w[kids[1] as usize], bif.eta);
            [lx, ly]
        } else {
            [0.0, 0.0]
        };
        for (i, &child) in kids.iter().enumerate() {
            let wire: f64 = t.path_edges(child).iter().map(|&e| d[e as usize]).sum();
            s.delay[child as usize] = s.delay[v as usize] + wire + lambdas[i] * bif.dbif;
        }
    }
    s.sink_delays.clear();
    s.sink_delays.resize(weights.len(), f64::NAN);
    let mut delay_cost = 0.0f64;
    for v in 0..n as NodeId {
        if let NodeKind::Sink(si) = t.node_kind(v) {
            s.sink_delays[si] = s.delay[v as usize];
            delay_cost += weights[si] * s.delay[v as usize];
        }
    }
    EvalTotals { connection_cost, delay_cost, total: connection_cost + delay_cost, bifurcations }
}

/// [`evaluate_into`] with a throwaway scratch, assembled into the owned
/// [`Evaluation`] form.
pub fn evaluate_owned<T: TreeRead + ?Sized>(
    t: &T,
    c: &[f64],
    d: &[f64],
    weights: &[f64],
    bif: &BifurcationConfig,
) -> Evaluation {
    let mut s = EvalScratch::default();
    let totals = evaluate_into(t, c, d, weights, bif, &mut s);
    Evaluation {
        connection_cost: totals.connection_cost,
        delay_cost: totals.delay_cost,
        total: totals.total,
        sink_delays: std::mem::take(&mut s.sink_delays),
        bifurcations: totals.bifurcations,
    }
}

/// Structural validation shared by the owned and arena tree forms:
/// every arc's path walks from the parent vertex to the node vertex in
/// `g`, sinks `0..num_sinks` each appear exactly once as leaves, and
/// internal nodes have ≤ 2 children.
pub fn validate_tree<T: TreeRead + ?Sized, G: SteinerGraph + ?Sized>(
    t: &T,
    g: &G,
    num_sinks: usize,
) -> Result<(), String> {
    let mut sink_seen = vec![0usize; num_sinks];
    for v in 0..t.num_nodes() as NodeId {
        match (t.parent(v), v) {
            (None, 0) => {}
            (None, _) => return Err(format!("non-root node {v} has no parent")),
            (Some(_), 0) => return Err("root has a parent".into()),
            (Some(p), _) => {
                // walk the path
                let mut cur = t.vertex(p);
                for &e in t.path_edges(v) {
                    let ep = g.endpoints(e);
                    if ep.u == cur {
                        cur = ep.v;
                    } else if ep.v == cur {
                        cur = ep.u;
                    } else {
                        return Err(format!(
                            "path of node {v}: edge {e} does not continue the walk"
                        ));
                    }
                }
                if cur != t.vertex(v) {
                    return Err(format!("path of node {v} ends at {cur}, not at its vertex"));
                }
            }
        }
        match t.node_kind(v) {
            NodeKind::Sink(s) => {
                if s >= num_sinks {
                    return Err(format!("sink index {s} out of range"));
                }
                sink_seen[s] += 1;
                if !t.children(v).is_empty() {
                    return Err(format!("sink node {v} is not a leaf"));
                }
            }
            _ => {
                if t.children(v).len() > 2 {
                    return Err(format!("node {v} has {} children", t.children(v).len()));
                }
            }
        }
    }
    for (s, &count) in sink_seen.iter().enumerate() {
        if count != 1 {
            return Err(format!("sink {s} appears {count} times"));
        }
    }
    Ok(())
}

/// An in-construction tree accepting nodes one at a time — implemented
/// by the owned [`EmbeddedTree`] and by [`ForestTreeBuilder`], so tree
/// producers (`cds_core::assemble`, the embedding) write either form
/// through one code path.
pub trait TreeSink {
    /// The root node id (always 0).
    fn root_node(&self) -> NodeId;
    /// Adds a node under `parent` reached by `path`, returning its id.
    fn push_node(
        &mut self,
        kind: NodeKind,
        vertex: VertexId,
        parent: NodeId,
        path: &[EdgeId],
    ) -> NodeId;
    /// Current number of children of `node`.
    fn child_count(&self, node: NodeId) -> usize;
}

/// One slab set of the double-buffered arena.
#[derive(Debug, Default, Clone)]
struct Slabs {
    kinds: Vec<NodeKind>,
    vertices: Vec<VertexId>,
    /// Tree-local parent ids; [`NO_NODE`] for roots.
    parents: Vec<NodeId>,
    /// Per-node span into `path_edges` (absolute offsets).
    path_start: Vec<u32>,
    path_len: Vec<u32>,
    /// Per-node CSR span into `children` (absolute offsets).
    child_start: Vec<u32>,
    child_len: Vec<u32>,
    path_edges: Vec<EdgeId>,
    /// Tree-local child ids.
    children: Vec<NodeId>,
    sink_delays: Vec<f64>,
    used_edges: Vec<(EdgeId, f64)>,
}

impl Slabs {
    fn clear(&mut self) {
        self.kinds.clear();
        self.vertices.clear();
        self.parents.clear();
        self.path_start.clear();
        self.path_len.clear();
        self.child_start.clear();
        self.child_len.clear();
        self.path_edges.clear();
        self.children.clear();
        self.sink_delays.clear();
        self.used_edges.clear();
    }

    fn len_total(&self) -> usize {
        self.kinds.len()
            + self.path_edges.len()
            + self.children.len()
            + self.sink_delays.len()
            + self.used_edges.len()
    }

    fn capacity_bytes(&self) -> u64 {
        use std::mem::size_of;
        (self.kinds.capacity() * size_of::<NodeKind>()
            + self.vertices.capacity() * size_of::<VertexId>()
            + self.parents.capacity() * size_of::<NodeId>()
            + (self.path_start.capacity()
                + self.path_len.capacity()
                + self.child_start.capacity()
                + self.child_len.capacity())
                * size_of::<u32>()
            + self.path_edges.capacity() * size_of::<EdgeId>()
            + self.children.capacity() * size_of::<NodeId>()
            + self.sink_delays.capacity() * size_of::<f64>()
            + self.used_edges.capacity() * size_of::<(EdgeId, f64)>()) as u64
    }

    /// Copies one live tree from `src` into this slab set, rebasing the
    /// per-node span offsets; node/child ids are tree-local and copy
    /// verbatim. Returns the rebased metadata.
    fn copy_tree(&mut self, src: &Slabs, m: &TreeMeta) -> TreeMeta {
        let node_start = self.kinds.len() as u32;
        let path_first = self.path_edges.len() as u32;
        let child_first = self.children.len() as u32;
        let nodes = m.node_range();
        self.kinds.extend_from_slice(&src.kinds[nodes.clone()]);
        self.vertices.extend_from_slice(&src.vertices[nodes.clone()]);
        self.parents.extend_from_slice(&src.parents[nodes.clone()]);
        for i in nodes.clone() {
            self.path_start.push(src.path_start[i] - m.path_first + path_first);
            self.child_start.push(src.child_start[i] - m.child_first + child_first);
        }
        self.path_len.extend_from_slice(&src.path_len[nodes.clone()]);
        self.child_len.extend_from_slice(&src.child_len[nodes]);
        self.path_edges.extend_from_slice(
            &src.path_edges[m.path_first as usize..(m.path_first + m.path_total) as usize],
        );
        self.children.extend_from_slice(
            &src.children[m.child_first as usize..(m.child_first + m.child_total) as usize],
        );
        let delay_start = self.sink_delays.len() as u32;
        self.sink_delays.extend_from_slice(
            &src.sink_delays[m.delay_start as usize..(m.delay_start + m.delay_len) as usize],
        );
        let used_start = self.used_edges.len() as u32;
        self.used_edges.extend_from_slice(
            &src.used_edges[m.used_start as usize..(m.used_start + m.used_len) as usize],
        );
        TreeMeta { node_start, path_first, child_first, delay_start, used_start, ..*m }
    }
}

/// Slot directory entry: where one tree's data lives, plus its summary
/// scalars.
#[derive(Debug, Clone, Copy)]
struct TreeMeta {
    node_start: u32,
    node_count: u32,
    path_first: u32,
    path_total: u32,
    child_first: u32,
    child_total: u32,
    delay_start: u32,
    delay_len: u32,
    used_start: u32,
    used_len: u32,
    wirelength_gcells: f64,
    vias: u32,
}

impl TreeMeta {
    fn node_range(&self) -> std::ops::Range<usize> {
        self.node_start as usize..(self.node_start + self.node_count) as usize
    }

    /// Slab elements this tree holds (garbage accounting unit).
    fn elements(&self) -> usize {
        self.node_count as usize
            + self.path_total as usize
            + self.child_total as usize
            + self.delay_len as usize
            + self.used_len as usize
    }
}

/// A self-contained snapshot of one routed tree in attachment order —
/// what [`RoutedForest::export_tree`] produces and
/// [`RoutedForest::import_tree`] consumes. This is the tree's
/// serialization form for mid-run checkpoints: structure only (no
/// children CSR, no summary payloads), because attachment order
/// determines the CSR and the router restores payloads separately.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreeDump {
    /// Node kinds; node 0 is always [`NodeKind::Root`].
    pub kinds: Vec<NodeKind>,
    /// Graph vertex of each node.
    pub vertices: Vec<VertexId>,
    /// Parent of each node (attachment order guarantees
    /// `parents[v] < v`); entry 0 is unused and exported as 0.
    pub parents: Vec<NodeId>,
    /// Parent-path length of each node (0 for the root).
    pub path_len: Vec<u32>,
    /// Concatenated parent-path edges, `path_len[v]` per node.
    pub path_edges: Vec<EdgeId>,
}

/// Sibling-link scratch used while a tree is open for building; sealed
/// into the children CSR by [`RoutedForest::finish_tree`].
#[derive(Debug, Default, Clone)]
struct BuildScratch {
    first: Vec<NodeId>,
    last: Vec<NodeId>,
    next: Vec<NodeId>,
    count: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
struct OpenTree {
    slot: usize,
    node_start: u32,
    path_first: u32,
}

/// The struct-of-arrays arena. See the [module docs](self).
#[derive(Debug, Default, Clone)]
pub struct RoutedForest {
    slabs: Slabs,
    /// The second buffer: [`compact`](Self::compact) copies live trees
    /// here and swaps, so compaction cycles reuse two warm buffers
    /// instead of allocating.
    spare: Slabs,
    trees: Vec<Option<TreeMeta>>,
    /// Retired slab elements (replaced trees) awaiting compaction.
    dead: usize,
    build: BuildScratch,
    open: Option<OpenTree>,
}

impl RoutedForest {
    /// An empty forest with no slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty forest with `slots` empty tree slots.
    pub fn with_slots(slots: usize) -> Self {
        RoutedForest { trees: vec![None; slots], ..Self::default() }
    }

    /// Number of tree slots (routed or not).
    pub fn num_slots(&self) -> usize {
        self.trees.len()
    }

    /// Appends an empty slot, returning its index.
    pub fn alloc_slot(&mut self) -> usize {
        self.trees.push(None);
        self.trees.len() - 1
    }

    /// Whether `slot` currently holds a tree.
    pub fn has_tree(&self, slot: usize) -> bool {
        self.trees.get(slot).is_some_and(Option::is_some)
    }

    /// Drops every tree and every slot, keeping all slab capacity (the
    /// reuse path of per-iteration worker scratch forests).
    pub fn clear(&mut self) {
        assert!(self.open.is_none(), "clear during an open tree build");
        self.slabs.clear();
        self.trees.clear();
        self.dead = 0;
    }

    /// Drops every tree but keeps the slots (all become empty) and all
    /// slab capacity — what a full re-route sweep does before refilling
    /// every slot.
    pub fn clear_trees(&mut self) {
        assert!(self.open.is_none(), "clear during an open tree build");
        self.slabs.clear();
        self.trees.iter_mut().for_each(|t| *t = None);
        self.dead = 0;
    }

    fn meta(&self, slot: usize) -> &TreeMeta {
        // INVARIANT: documented contract - callers pass slots returned by a live insert/start_tree; the message names the offending slot for the caller bug.
        self.trees[slot].as_ref().unwrap_or_else(|| panic!("slot {slot} holds no tree"))
    }

    fn retire(&mut self, slot: usize) {
        if let Some(old) = self.trees[slot].take() {
            self.dead += old.elements();
        }
    }

    /// A read view of the tree in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot holds no tree.
    pub fn view(&self, slot: usize) -> TreeView<'_> {
        TreeView { forest: self, meta: *self.meta(slot) }
    }

    /// The sink-delay span of `slot` (empty if none recorded).
    pub fn sink_delays(&self, slot: usize) -> &[f64] {
        match &self.trees[slot] {
            Some(m) => {
                &self.slabs.sink_delays
                    [m.delay_start as usize..(m.delay_start + m.delay_len) as usize]
            }
            None => &[],
        }
    }

    /// The used-edge span of `slot` (empty if none recorded).
    pub fn used_edges(&self, slot: usize) -> &[(EdgeId, f64)] {
        match &self.trees[slot] {
            Some(m) => {
                &self.slabs.used_edges[m.used_start as usize..(m.used_start + m.used_len) as usize]
            }
            None => &[],
        }
    }

    /// The recorded wirelength summary of `slot` (0 if empty).
    pub fn wirelength_gcells(&self, slot: usize) -> f64 {
        self.trees[slot].as_ref().map_or(0.0, |m| m.wirelength_gcells)
    }

    /// The recorded via-count summary of `slot` (0 if empty).
    pub fn vias(&self, slot: usize) -> usize {
        self.trees[slot].as_ref().map_or(0, |m| m.vias as usize)
    }

    /// All edges of the tree in `slot`, one contiguous slab range in
    /// node order (identical enumeration order to `EmbeddedTree::edges`).
    pub fn tree_edges(&self, slot: usize) -> &[EdgeId] {
        let m = self.meta(slot);
        &self.slabs.path_edges[m.path_first as usize..(m.path_first + m.path_total) as usize]
    }

    // ------------------------------------------------------- building

    /// Opens `slot` for building, replacing any previous tree, and
    /// seeds the root node at `root_vertex`. Finish with
    /// [`finish_tree`](Self::finish_tree) (or drive the emit through a
    /// [`ForestTreeBuilder`] from [`build_tree`](Self::build_tree)).
    ///
    /// # Panics
    ///
    /// Panics if another tree build is open.
    pub fn start_tree(&mut self, slot: usize, root_vertex: VertexId) {
        assert!(self.open.is_none(), "a tree build is already open");
        assert!(slot < self.trees.len(), "slot {slot} out of range");
        self.retire(slot);
        self.open = Some(OpenTree {
            slot,
            node_start: self.slabs.kinds.len() as u32,
            path_first: self.slabs.path_edges.len() as u32,
        });
        self.build.first.clear();
        self.build.last.clear();
        self.build.next.clear();
        self.build.count.clear();
        self.push_node_raw(NodeKind::Root, root_vertex, NO_NODE, &[]);
    }

    fn push_node_raw(
        &mut self,
        kind: NodeKind,
        vertex: VertexId,
        parent: NodeId,
        path: &[EdgeId],
    ) -> NodeId {
        // INVARIANT: documented contract - push_node is only legal between start_tree and finish_tree, while a build is open.
        let open = self.open.expect("no open tree build");
        let local = (self.slabs.kinds.len() as u32) - open.node_start;
        self.slabs.kinds.push(kind);
        self.slabs.vertices.push(vertex);
        self.slabs.parents.push(parent);
        self.slabs.path_start.push(self.slabs.path_edges.len() as u32);
        self.slabs.path_len.push(path.len() as u32);
        self.slabs.path_edges.extend_from_slice(path);
        self.slabs.child_start.push(0);
        self.slabs.child_len.push(0);
        self.build.first.push(NO_NODE);
        self.build.last.push(NO_NODE);
        self.build.next.push(NO_NODE);
        self.build.count.push(0);
        if parent != NO_NODE {
            let p = parent as usize;
            if self.build.first[p] == NO_NODE {
                self.build.first[p] = local;
            } else {
                let tail = self.build.last[p] as usize;
                self.build.next[tail] = local;
            }
            self.build.last[p] = local;
            self.build.count[p] += 1;
        }
        local
    }

    /// Adds a node to the open tree build.
    ///
    /// # Panics
    ///
    /// Panics if no build is open, `parent` is unknown, or `kind` is
    /// `Root`.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        vertex: VertexId,
        parent: NodeId,
        path: &[EdgeId],
    ) -> NodeId {
        assert!(kind != NodeKind::Root, "a tree has exactly one root");
        assert!((parent as usize) < self.build.count.len(), "unknown parent");
        self.push_node_raw(kind, vertex, parent, path)
    }

    /// Children so far of `node` in the open build.
    pub fn open_child_count(&self, node: NodeId) -> usize {
        self.build.count[node as usize] as usize
    }

    /// Seals the open build: materializes the children CSR (attachment
    /// order) and publishes the slot's metadata.
    pub fn finish_tree(&mut self) {
        // INVARIANT: documented contract - finish_tree is only legal while a build is open.
        let open = self.open.take().expect("no open tree build");
        let node_count = self.slabs.kinds.len() as u32 - open.node_start;
        let child_first = self.slabs.children.len() as u32;
        for local in 0..node_count as usize {
            let abs = open.node_start as usize + local;
            self.slabs.child_start[abs] = self.slabs.children.len() as u32;
            self.slabs.child_len[abs] = self.build.count[local];
            let mut link = self.build.first[local];
            while link != NO_NODE {
                self.slabs.children.push(link);
                link = self.build.next[link as usize];
            }
        }
        self.trees[open.slot] = Some(TreeMeta {
            node_start: open.node_start,
            node_count,
            path_first: open.path_first,
            path_total: self.slabs.path_edges.len() as u32 - open.path_first,
            child_first,
            child_total: self.slabs.children.len() as u32 - child_first,
            delay_start: self.slabs.sink_delays.len() as u32,
            delay_len: 0,
            used_start: self.slabs.used_edges.len() as u32,
            used_len: 0,
            wirelength_gcells: 0.0,
            vias: 0,
        });
    }

    /// Opens `slot` and returns a [`TreeSink`] builder over it; call
    /// [`ForestTreeBuilder::finish`] when done.
    pub fn build_tree(&mut self, slot: usize, root_vertex: VertexId) -> ForestTreeBuilder<'_> {
        self.start_tree(slot, root_vertex);
        ForestTreeBuilder { forest: self }
    }

    /// Copies an owned tree into `slot` (node ids, child order, and
    /// edge order preserved verbatim).
    pub fn insert_embedded(&mut self, slot: usize, tree: &EmbeddedTree) {
        self.start_tree(slot, tree.vertex(0));
        for v in 1..tree.num_nodes() as NodeId {
            self.push_node_raw(
                tree.node_kind(v),
                tree.vertex(v),
                // INVARIANT: v starts at 1 and node 0 is the root, so every visited node has a parent by Topology construction.
                tree.parent(v).expect("non-root nodes have parents"),
                &tree.path(v).edges,
            );
        }
        self.finish_tree();
    }

    // ----------------------------------------------- summary payloads

    /// Records `slot`'s per-sink delays (replacing any previous span).
    pub fn set_sink_delays(&mut self, slot: usize, delays: &[f64]) {
        let start = self.slabs.sink_delays.len() as u32;
        self.slabs.sink_delays.extend_from_slice(delays);
        // INVARIANT: documented contract - slot names a live tree.
        let m = self.trees[slot].as_mut().expect("slot holds no tree");
        self.dead += m.delay_len as usize;
        m.delay_start = start;
        m.delay_len = delays.len() as u32;
    }

    /// Rebuilds `slot`'s used-edge span from its own path edges, one
    /// `(edge, tracks)` entry per edge use in tree order, via `map`
    /// (which translates the stored edge id and prices its track
    /// consumption).
    pub fn set_used_from_paths(
        &mut self,
        slot: usize,
        mut map: impl FnMut(EdgeId) -> (EdgeId, f64),
    ) {
        let m = *self.meta(slot);
        let Slabs { path_edges, used_edges, .. } = &mut self.slabs;
        let start = used_edges.len() as u32;
        for &e in &path_edges[m.path_first as usize..(m.path_first + m.path_total) as usize] {
            used_edges.push(map(e));
        }
        // INVARIANT: documented contract - slot names a live tree.
        let m = self.trees[slot].as_mut().expect("slot holds no tree");
        self.dead += m.used_len as usize;
        m.used_start = start;
        m.used_len = used_edges.len() as u32 - start;
    }

    /// Rewrites `slot`'s path edge ids in place through `map` — how the
    /// materialized-window backend globalizes window-local edge ids
    /// before the tree joins the chip-wide forest.
    pub fn remap_path_edges(&mut self, slot: usize, map: &[EdgeId]) {
        let m = *self.meta(slot);
        for e in &mut self.slabs.path_edges
            [m.path_first as usize..(m.path_first + m.path_total) as usize]
        {
            *e = map[*e as usize];
        }
    }

    /// Records `slot`'s wirelength/via summary scalars.
    pub fn set_summary(&mut self, slot: usize, wirelength_gcells: f64, vias: usize) {
        // INVARIANT: documented contract - slot names a live tree.
        let m = self.trees[slot].as_mut().expect("slot holds no tree");
        m.wirelength_gcells = wirelength_gcells;
        m.vias = vias as u32;
    }

    // ------------------------------------------- copy / double buffer

    /// Copies the tree (and its summary payloads) in `src_slot` of
    /// `src` into `dst_slot` of `self`, replacing any previous tree —
    /// contiguous slab copies, no per-node work beyond span rebasing.
    pub fn copy_tree_from(&mut self, src: &RoutedForest, src_slot: usize, dst_slot: usize) {
        assert!(self.open.is_none(), "copy during an open tree build");
        self.retire(dst_slot);
        let m = src.meta(src_slot);
        self.trees[dst_slot] = Some(self.slabs.copy_tree(&src.slabs, m));
    }

    /// Snapshots the tree in `slot` as an owned [`TreeDump`] — the
    /// checkpoint serialization form. The children CSR and summary
    /// payloads are not exported: attachment order reconstructs the
    /// former, and the router restores the latter separately.
    ///
    /// # Panics
    ///
    /// Panics if the slot holds no tree.
    pub fn export_tree(&self, slot: usize) -> TreeDump {
        let m = self.meta(slot);
        let nodes = m.node_range();
        TreeDump {
            kinds: self.slabs.kinds[nodes.clone()].to_vec(),
            vertices: self.slabs.vertices[nodes.clone()].to_vec(),
            parents: self.slabs.parents[nodes.clone()]
                .iter()
                .map(|&p| if p == NO_NODE { 0 } else { p })
                .collect(),
            path_len: self.slabs.path_len[nodes].to_vec(),
            path_edges: self.slabs.path_edges
                [m.path_first as usize..(m.path_first + m.path_total) as usize]
                .to_vec(),
        }
    }

    /// Rebuilds the tree in `slot` from a dump, replacing any previous
    /// tree. Node ids, children order, and path-edge enumeration order
    /// are identical to the exported original, so
    /// `import_tree(export_tree(s))` reproduces the tree bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics on a malformed dump (callers validate dumps when they
    /// cross a trust boundary — the checkpoint parser does).
    pub fn import_tree(&mut self, slot: usize, dump: &TreeDump) {
        let n = dump.kinds.len();
        assert!(n > 0, "a tree dump needs at least the root");
        assert!(
            dump.vertices.len() == n && dump.parents.len() == n && dump.path_len.len() == n,
            "tree dump arrays disagree on the node count"
        );
        assert_eq!(dump.kinds[0], NodeKind::Root, "node 0 must be the root");
        assert_eq!(dump.path_len[0], 0, "the root has no parent path");
        self.start_tree(slot, dump.vertices[0]);
        let mut off = 0usize;
        for v in 1..n {
            let len = dump.path_len[v] as usize;
            let path = &dump.path_edges[off..off + len];
            off += len;
            self.add_node(dump.kinds[v], dump.vertices[v], dump.parents[v], path);
        }
        assert_eq!(off, dump.path_edges.len(), "path edges disagree with path lengths");
        self.finish_tree();
    }

    /// Fraction of slab elements held by retired (replaced) trees.
    pub fn garbage_ratio(&self) -> f64 {
        let total = self.slabs.len_total();
        if total == 0 {
            0.0
        } else {
            self.dead as f64 / total as f64
        }
    }

    /// Compacts the arena: copies every live tree, in slot order, into
    /// the spare buffer and swaps. Slot indices, tree-local node ids,
    /// and all enumeration orders are unchanged; only offsets move.
    /// Both buffers retain their capacity, so steady-state compaction
    /// cycles are allocation-free.
    pub fn compact(&mut self) {
        assert!(self.open.is_none(), "compact during an open tree build");
        self.spare.clear();
        for slot in 0..self.trees.len() {
            if let Some(m) = self.trees[slot] {
                self.trees[slot] = Some(self.spare.copy_tree(&self.slabs, &m));
            }
        }
        std::mem::swap(&mut self.slabs, &mut self.spare);
        self.spare.clear();
        self.dead = 0;
    }

    /// Bytes currently reserved by both slab buffers (capacity, not
    /// length) — the router's peak-arena accounting reads this.
    pub fn arena_bytes(&self) -> u64 {
        self.slabs.capacity_bytes() + self.spare.capacity_bytes()
    }
}

/// A [`TreeSink`] over an open [`RoutedForest`] slot.
#[derive(Debug)]
pub struct ForestTreeBuilder<'a> {
    forest: &'a mut RoutedForest,
}

impl ForestTreeBuilder<'_> {
    /// Seals the tree (children CSR + slot metadata).
    pub fn finish(self) {
        self.forest.finish_tree();
    }
}

impl TreeSink for ForestTreeBuilder<'_> {
    fn root_node(&self) -> NodeId {
        0
    }

    fn push_node(
        &mut self,
        kind: NodeKind,
        vertex: VertexId,
        parent: NodeId,
        path: &[EdgeId],
    ) -> NodeId {
        self.forest.add_node(kind, vertex, parent, path)
    }

    fn child_count(&self, node: NodeId) -> usize {
        self.forest.open_child_count(node)
    }
}

/// A cheap (`Copy`) read handle over one tree of a [`RoutedForest`],
/// exposing the [`EmbeddedTree`] read API without materializing.
#[derive(Debug, Clone, Copy)]
pub struct TreeView<'a> {
    forest: &'a RoutedForest,
    meta: TreeMeta,
}

impl<'a> TreeView<'a> {
    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// All edges of the tree — one contiguous slab slice, in the same
    /// enumeration order as `EmbeddedTree::edges`.
    pub fn edges(&self) -> &'a [EdgeId] {
        &self.forest.slabs.path_edges
            [self.meta.path_first as usize..(self.meta.path_first + self.meta.path_total) as usize]
    }

    /// Total wirelength in gcell units.
    pub fn wirelength<G: SteinerGraph + ?Sized>(&self, g: &G) -> f64 {
        self.edges().iter().map(|&e| g.edge_attrs(e).length).sum()
    }

    /// Number of via edges used.
    pub fn via_count<G: SteinerGraph + ?Sized>(&self, g: &G) -> usize {
        self.edges().iter().filter(|&&e| g.edge_attrs(e).kind == EdgeKind::Via).count()
    }

    /// Evaluates the paper's objective into caller scratch (per-sink
    /// delays land in `s.sink_delays`).
    pub fn evaluate_into(
        &self,
        c: &[f64],
        d: &[f64],
        weights: &[f64],
        bif: &BifurcationConfig,
        s: &mut EvalScratch,
    ) -> EvalTotals {
        evaluate_into(self, c, d, weights, bif, s)
    }

    /// Evaluates the paper's objective (owned result form).
    pub fn evaluate(
        &self,
        c: &[f64],
        d: &[f64],
        weights: &[f64],
        bif: &BifurcationConfig,
    ) -> Evaluation {
        evaluate_owned(self, c, d, weights, bif)
    }

    /// Structural validation (see [`validate_tree`]).
    pub fn validate<G: SteinerGraph + ?Sized>(
        &self,
        g: &G,
        num_sinks: usize,
    ) -> Result<(), String> {
        validate_tree(self, g, num_sinks)
    }

    /// Materializes this view as an owned [`EmbeddedTree`] (the compat
    /// bridge for callers that need ownership).
    pub fn to_embedded(&self) -> EmbeddedTree {
        let mut t = EmbeddedTree::new(self.vertex(0));
        for v in 1..self.num_nodes() as NodeId {
            t.add_node(
                self.node_kind(v),
                self.vertex(v),
                self.parent(v).expect("non-root nodes have parents"),
                self.path_edges(v).to_vec(),
            );
        }
        t
    }

    #[inline]
    fn abs(&self, v: NodeId) -> usize {
        debug_assert!(v < self.meta.node_count, "node {v} out of range");
        (self.meta.node_start + v) as usize
    }
}

impl TreeRead for TreeView<'_> {
    fn num_nodes(&self) -> usize {
        self.meta.node_count as usize
    }

    fn node_kind(&self, v: NodeId) -> NodeKind {
        self.forest.slabs.kinds[self.abs(v)]
    }

    fn vertex(&self, v: NodeId) -> VertexId {
        self.forest.slabs.vertices[self.abs(v)]
    }

    fn parent(&self, v: NodeId) -> Option<NodeId> {
        match self.forest.slabs.parents[self.abs(v)] {
            NO_NODE => None,
            p => Some(p),
        }
    }

    fn children(&self, v: NodeId) -> &[NodeId] {
        let a = self.abs(v);
        let s = self.forest.slabs.child_start[a] as usize;
        &self.forest.slabs.children[s..s + self.forest.slabs.child_len[a] as usize]
    }

    fn path_edges(&self, v: NodeId) -> &[EdgeId] {
        let a = self.abs(v);
        let s = self.forest.slabs.path_start[a] as usize;
        &self.forest.slabs.path_edges[s..s + self.forest.slabs.path_len[a] as usize]
    }
}

// Convenience inherent mirrors of the TreeRead accessors, so callers
// holding a TreeView need not import the trait.
impl TreeView<'_> {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        TreeRead::num_nodes(self)
    }

    /// Kind of `v`.
    pub fn node_kind(&self, v: NodeId) -> NodeKind {
        TreeRead::node_kind(self, v)
    }

    /// Graph vertex of `v`.
    pub fn vertex(&self, v: NodeId) -> VertexId {
        TreeRead::vertex(self, v)
    }

    /// Parent of `v`.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        TreeRead::parent(self, v)
    }

    /// Children of `v`, in attachment order.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        TreeRead::children(self, v)
    }

    /// Path (from the parent's vertex) of `v`.
    pub fn path_edges(&self, v: NodeId) -> &[EdgeId] {
        TreeRead::path_edges(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::{EdgeAttrs, Graph, GraphBuilder};

    fn line4() -> Graph {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1, EdgeAttrs::wire(1.0, 10.0));
        }
        b.build()
    }

    /// Builds the same small tree in both forms.
    fn sample_tree() -> EmbeddedTree {
        let mut t = EmbeddedTree::new(1);
        let s = t.add_node(NodeKind::Steiner, 1, 0, vec![]);
        t.add_node(NodeKind::Sink(0), 0, s, vec![0]);
        t.add_node(NodeKind::Sink(1), 3, s, vec![1, 2]);
        t
    }

    #[test]
    fn view_mirrors_owned_tree_bit_for_bit() {
        let g = line4();
        let (c, d) = (g.base_costs(), g.delays());
        let tree = sample_tree();
        let mut f = RoutedForest::with_slots(3);
        f.insert_embedded(2, &tree);
        let v = f.view(2);
        assert_eq!(v.num_nodes(), tree.num_nodes());
        for n in 0..tree.num_nodes() as NodeId {
            assert_eq!(v.node_kind(n), tree.node_kind(n), "node {n} kind");
            assert_eq!(v.vertex(n), tree.vertex(n), "node {n} vertex");
            assert_eq!(v.parent(n), tree.parent(n), "node {n} parent");
            assert_eq!(v.children(n), tree.children(n), "node {n} children");
            assert_eq!(v.path_edges(n), &tree.path(n).edges[..], "node {n} path");
        }
        let owned_edges: Vec<EdgeId> = tree.edges().collect();
        assert_eq!(v.edges(), &owned_edges[..]);
        assert_eq!(v.wirelength(&g).to_bits(), tree.wirelength(&g).to_bits());
        assert_eq!(v.via_count(&g), tree.via_count(&g));
        v.validate(&g, 2).unwrap();
        let bif = BifurcationConfig::new(6.0, 0.25);
        let w = [5.0, 1.0];
        let a = tree.evaluate(&c, &d, &w, &bif);
        let b = v.evaluate(&c, &d, &w, &bif);
        assert_eq!(a, b, "owned and view evaluations must be bit-identical");
        // round-trip through to_embedded
        let back = v.to_embedded();
        assert_eq!(back.evaluate(&c, &d, &w, &bif), a);
    }

    #[test]
    fn replacing_a_slot_retires_garbage_and_compaction_preserves_trees() {
        let g = line4();
        let tree = sample_tree();
        let mut f = RoutedForest::with_slots(2);
        f.insert_embedded(0, &tree);
        f.insert_embedded(1, &tree);
        assert_eq!(f.garbage_ratio(), 0.0);
        // replace slot 0 twice — garbage accumulates
        f.insert_embedded(0, &tree);
        f.insert_embedded(0, &tree);
        assert!(f.garbage_ratio() > 0.3, "ratio {}", f.garbage_ratio());
        f.set_sink_delays(1, &[1.5, 2.5]);
        f.set_used_from_paths(1, |e| (e, 1.0));
        f.set_summary(1, 3.0, 0);
        let before: Vec<EdgeId> = f.view(1).edges().to_vec();
        f.compact();
        assert_eq!(f.garbage_ratio(), 0.0);
        assert_eq!(f.view(1).edges(), &before[..]);
        assert_eq!(f.sink_delays(1), &[1.5, 2.5]);
        assert_eq!(f.used_edges(1).len(), 3);
        assert_eq!(f.wirelength_gcells(1), 3.0);
        f.view(0).validate(&g, 2).unwrap();
        f.view(1).validate(&g, 2).unwrap();
    }

    #[test]
    fn copy_tree_from_transfers_trees_and_payloads() {
        let tree = sample_tree();
        let mut src = RoutedForest::with_slots(1);
        src.insert_embedded(0, &tree);
        src.set_sink_delays(0, &[10.0, 30.0]);
        src.set_used_from_paths(0, |e| (e + 100, 2.0));
        src.set_summary(0, 3.0, 1);
        let mut dst = RoutedForest::with_slots(4);
        dst.insert_embedded(3, &tree); // will be replaced
        dst.copy_tree_from(&src, 0, 3);
        assert_eq!(dst.sink_delays(3), &[10.0, 30.0]);
        assert_eq!(dst.used_edges(3), &[(100, 2.0), (101, 2.0), (102, 2.0)]);
        assert_eq!(dst.wirelength_gcells(3), 3.0);
        assert_eq!(dst.vias(3), 1);
        let want: Vec<EdgeId> = tree.edges().collect();
        assert_eq!(dst.view(3).edges(), &want[..]);
        assert!(dst.garbage_ratio() > 0.0, "the replaced tree must count as garbage");
    }

    #[test]
    fn remap_rewrites_paths_in_place() {
        let tree = sample_tree();
        let mut f = RoutedForest::with_slots(1);
        f.insert_embedded(0, &tree);
        let map: Vec<EdgeId> = (0..4).map(|e| e + 7).collect();
        f.remap_path_edges(0, &map);
        assert_eq!(f.tree_edges(0), &[7, 8, 9]);
    }

    #[test]
    fn export_import_round_trips_structure_bit_identically() {
        let tree = sample_tree();
        let mut src = RoutedForest::with_slots(1);
        src.insert_embedded(0, &tree);
        let dump = src.export_tree(0);
        let mut dst = RoutedForest::with_slots(2);
        dst.import_tree(1, &dump);
        let (a, b) = (src.view(0), dst.view(1));
        assert_eq!(a.num_nodes(), b.num_nodes());
        for v in 0..a.num_nodes() as NodeId {
            assert_eq!(a.node_kind(v), b.node_kind(v));
            assert_eq!(a.vertex(v), b.vertex(v));
            assert_eq!(a.parent(v), b.parent(v));
            assert_eq!(a.children(v), b.children(v));
            assert_eq!(a.path_edges(v), b.path_edges(v));
        }
        assert_eq!(a.edges(), b.edges());
        // re-export reproduces the dump exactly
        assert_eq!(dst.export_tree(1), dump);
    }

    #[test]
    fn builder_matches_embedded_add_node_semantics() {
        let mut f = RoutedForest::with_slots(1);
        let mut b = f.build_tree(0, 5);
        assert_eq!(b.root_node(), 0);
        let s = b.push_node(NodeKind::Steiner, 5, 0, &[]);
        assert_eq!(b.child_count(0), 1);
        b.push_node(NodeKind::Sink(0), 6, s, &[2]);
        b.push_node(NodeKind::Sink(1), 4, s, &[1]);
        assert_eq!(b.child_count(s), 2);
        b.finish();
        let v = f.view(0);
        assert_eq!(v.children(s), &[2, 3]);
        assert_eq!(v.path_edges(3), &[1]);
        assert_eq!(v.parent(3), Some(s));
    }
}
