#![forbid(unsafe_code)]
//! Steiner tree topologies and the cost-distance objective.
//!
//! Two tree representations are shared across the workspace:
//!
//! * [`Topology`] — an r-arborescence in the plane (nodes have gcell
//!   positions). The comparison baselines (L1 / shallow-light /
//!   Prim–Dijkstra) produce these, which are then embedded into the global
//!   routing graph by `cds-embed`.
//! * [`EmbeddedTree`] — a tree whose arcs carry explicit edge paths in a
//!   routing [`Graph`](cds_graph::Graph). Both the embedding and the
//!   paper's cost-distance algorithm produce these; [`EmbeddedTree::evaluate`]
//!   computes the paper's objective, Eq. (1) with the bifurcation-penalty
//!   delay model of Eq. (3).
//!
//! The bifurcation penalty machinery of §I — the split rule Eq. (2), the
//! merge penalty `β(w, w′)` — lives in [`penalty`].
//!
//! # Examples
//!
//! ```
//! use cds_topo::penalty::{lambda_split, beta, BifurcationConfig};
//!
//! let bif = BifurcationConfig { dbif: 8.0, eta: 0.25 };
//! // heavier subtree gets the small share of the penalty
//! let (lx, ly) = lambda_split(3.0, 1.0, bif.eta);
//! assert_eq!((lx, ly), (0.25, 0.75));
//! // β is the weighted penalty under the optimal split
//! assert_eq!(beta(3.0, 1.0, &bif), 8.0 * (0.25 * 3.0 + 0.75 * 1.0));
//! ```

pub mod embedded;
pub mod forest;
pub mod penalty;
pub mod topology;

pub use embedded::{EmbeddedArc, EmbeddedTree, Evaluation};
pub use forest::{EvalScratch, EvalTotals, RoutedForest, TreeDump, TreeRead, TreeSink, TreeView};
pub use penalty::{beta, lambda_split, BifurcationConfig};
pub use topology::{NodeId, NodeKind, Topology};
