//! Bifurcation delay penalties (paper §I, Eqs. (2) and (3)).
//!
//! After buffering, every bifurcation adds capacitance and therefore delay.
//! The paper models this with a total penalty `d_bif` per bifurcation that
//! may be split between the two branches: branch `x` receives `λ_x·d_bif`
//! with `λ_x ∈ [η, 1−η]` and `λ_y = 1 − λ_x` — buffering can shield one
//! branch (Fig. 2), but only so far (`η`).

/// The bifurcation penalty parameters of an instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BifurcationConfig {
    /// Total penalty per bifurcation (ps). `0.0` disables penalties.
    pub dbif: f64,
    /// Shielding limit, `0 ≤ η ≤ 1/2`. The paper's predecessors fixed
    /// `η = 0.5` (no freedom); smaller η lets buffering favour the
    /// critical branch.
    pub eta: f64,
}

impl BifurcationConfig {
    /// No bifurcation penalties (the `d_bif = 0` experiments).
    pub const ZERO: BifurcationConfig = BifurcationConfig { dbif: 0.0, eta: 0.5 };

    /// Creates a config, validating the ranges.
    ///
    /// # Panics
    ///
    /// Panics unless `dbif ≥ 0` and `0 ≤ eta ≤ 1/2`.
    pub fn new(dbif: f64, eta: f64) -> Self {
        assert!(dbif >= 0.0, "dbif must be non-negative");
        assert!((0.0..=0.5).contains(&eta), "eta must lie in [0, 1/2]");
        BifurcationConfig { dbif, eta }
    }
}

/// The optimum split `(λ_x, λ_y)` of Eq. (2) for subtree delay weights
/// `w_x` and `w_y`: the heavier subtree takes the minimum share `η`, ties
/// split evenly.
///
/// ```
/// use cds_topo::penalty::lambda_split;
/// assert_eq!(lambda_split(1.0, 1.0, 0.3), (0.5, 0.5));
/// assert_eq!(lambda_split(5.0, 1.0, 0.3), (0.3, 0.7));
/// assert_eq!(lambda_split(1.0, 5.0, 0.3), (0.7, 0.3));
/// ```
pub fn lambda_split(w_x: f64, w_y: f64, eta: f64) -> (f64, f64) {
    if w_x > w_y {
        (eta, 1.0 - eta)
    } else if w_x < w_y {
        (1.0 - eta, eta)
    } else {
        (0.5, 0.5)
    }
}

/// The minimum possible *weighted* delay penalty when merging two
/// components with delay weights `w` and `w′` (paper §II):
///
/// ```text
/// β(w, w′) = d_bif · (η·max(w, w′) + (1−η)·min(w, w′))
/// ```
///
/// This is what the optimal λ split of Eq. (2) achieves: the larger
/// weight multiplies the smaller share.
pub fn beta(w: f64, w_prime: f64, bif: &BifurcationConfig) -> f64 {
    bif.dbif * (bif.eta * w.max(w_prime) + (1.0 - bif.eta) * w.min(w_prime))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_config_disables_penalty() {
        assert_eq!(beta(3.0, 7.0, &BifurcationConfig::ZERO), 0.0);
    }

    #[test]
    fn eta_half_is_even_split() {
        let bif = BifurcationConfig::new(10.0, 0.5);
        // with η = 1/2 both shares are 1/2 regardless of weights
        assert_eq!(beta(4.0, 1.0, &bif), 10.0 * 0.5 * 5.0);
        assert_eq!(lambda_split(4.0, 1.0, 0.5), (0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn invalid_eta_panics() {
        let _ = BifurcationConfig::new(1.0, 0.7);
    }

    proptest! {
        /// Eq. (2) is optimal: for any admissible λ, the weighted penalty
        /// λ·w_x + (1−λ)·w_y is at least β/d_bif.
        #[test]
        fn lambda_split_minimizes(wx in 0.0f64..100.0, wy in 0.0f64..100.0,
                                  eta in 0.0f64..=0.5, lam_t in 0.0f64..=1.0) {
            let bif = BifurcationConfig::new(1.0, eta);
            let lam = eta + lam_t * (1.0 - 2.0 * eta); // any λ in [η, 1−η]
            let candidate = lam * wx + (1.0 - lam) * wy;
            prop_assert!(beta(wx, wy, &bif) <= candidate + 1e-9);
            // and the optimum is attained by lambda_split
            let (lx, ly) = lambda_split(wx, wy, eta);
            prop_assert!((lx + ly - 1.0).abs() < 1e-12);
            prop_assert!((lx * wx + ly * wy - beta(wx, wy, &bif)).abs() < 1e-9);
        }

        /// β is symmetric and monotone in both arguments.
        #[test]
        fn beta_symmetric_monotone(w1 in 0.0f64..50.0, w2 in 0.0f64..50.0,
                                   inc in 0.0f64..10.0, eta in 0.0f64..=0.5) {
            let bif = BifurcationConfig::new(2.5, eta);
            prop_assert_eq!(beta(w1, w2, &bif), beta(w2, w1, &bif));
            prop_assert!(beta(w1 + inc, w2, &bif) >= beta(w1, w2, &bif) - 1e-12);
        }
    }
}
