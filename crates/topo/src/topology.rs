//! Plane r-arborescences (Steiner topologies).
//!
//! The comparison algorithms of §IV-A first compute a topology in the
//! plane "considering total length instead of congestion cost" and embed
//! it into the routing graph afterwards. This module is that plane
//! representation: an arena-allocated rooted tree whose nodes carry gcell
//! positions.

use crate::penalty::{lambda_split, BifurcationConfig};
use cds_geom::Point;

/// Index of a node within a [`Topology`].
pub type NodeId = u32;

/// What a tree node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The source of the net. Node 0 in every tree.
    Root,
    /// Sink number `usize` (index into the instance's sink list).
    Sink(usize),
    /// A branching or pass-through point.
    Steiner,
}

/// A rooted tree in the plane. Node 0 is always the root; every other
/// node has a parent. Multiple nodes may share a position (the paper's
/// trees allow this; it is how bifurcation-compatibility is achieved
/// without changing lengths).
///
/// ```
/// use cds_topo::{Topology, NodeKind};
/// use cds_geom::Point;
///
/// let mut t = Topology::new(Point::new(0, 0));
/// let s = t.add_steiner(Point::new(2, 0), t.root());
/// t.add_sink(0, Point::new(2, 3), s);
/// t.add_sink(1, Point::new(4, 0), s);
/// assert_eq!(t.length(), 2 + 3 + 2);
/// assert_eq!(t.node_kind(0), NodeKind::Root);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    pos: Vec<Point>,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl Topology {
    /// A tree consisting only of the root.
    pub fn new(root_pos: Point) -> Self {
        Topology {
            kinds: vec![NodeKind::Root],
            pos: vec![root_pos],
            parent: vec![None],
            children: vec![Vec::new()],
        }
    }

    /// The root's id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of `v`.
    pub fn node_kind(&self, v: NodeId) -> NodeKind {
        self.kinds[v as usize]
    }

    /// Position of `v`.
    pub fn position(&self, v: NodeId) -> Point {
        self.pos[v as usize]
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v as usize]
    }

    /// Children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v as usize]
    }

    /// Ids of all sink nodes as (sink index, node) pairs.
    pub fn sink_nodes(&self) -> Vec<(usize, NodeId)> {
        self.kinds
            .iter()
            .enumerate()
            .filter_map(|(i, k)| match k {
                NodeKind::Sink(s) => Some((*s, i as NodeId)),
                _ => None,
            })
            .collect()
    }

    /// Adds a node of arbitrary kind under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist or `kind` is `Root`.
    pub fn add_node(&mut self, kind: NodeKind, pos: Point, parent: NodeId) -> NodeId {
        assert!((parent as usize) < self.kinds.len(), "unknown parent");
        assert!(kind != NodeKind::Root, "a tree has exactly one root");
        let id = self.kinds.len() as NodeId;
        self.kinds.push(kind);
        self.pos.push(pos);
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent as usize].push(id);
        id
    }

    /// Adds sink `sink_idx` under `parent`.
    pub fn add_sink(&mut self, sink_idx: usize, pos: Point, parent: NodeId) -> NodeId {
        self.add_node(NodeKind::Sink(sink_idx), pos, parent)
    }

    /// Adds a Steiner node under `parent`.
    pub fn add_steiner(&mut self, pos: Point, parent: NodeId) -> NodeId {
        self.add_node(NodeKind::Steiner, pos, parent)
    }

    /// Moves `v` (with its subtree) under `new_parent`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the root or `new_parent` lies inside `v`'s
    /// subtree (which would create a cycle).
    pub fn reparent(&mut self, v: NodeId, new_parent: NodeId) {
        // INVARIANT: documented panic contract - reparenting the root is a caller bug.
        let old = self.parent[v as usize].expect("cannot reparent the root");
        assert!(!self.in_subtree(new_parent, v), "reparent would create a cycle");
        self.children[old as usize].retain(|&c| c != v);
        self.children[new_parent as usize].push(v);
        self.parent[v as usize] = Some(new_parent);
    }

    /// Inserts a Steiner node at `pos` on the arc between `v` and its
    /// parent, returning the new node (which becomes `v`'s parent).
    ///
    /// # Panics
    ///
    /// Panics if `v` is the root.
    pub fn split_arc(&mut self, v: NodeId, pos: Point) -> NodeId {
        // INVARIANT: documented panic contract - splitting the root's (absent) incoming arc is a caller bug.
        let p = self.parent[v as usize].expect("root has no incoming arc");
        let s = self.add_steiner(pos, p);
        self.reparent(v, s);
        s
    }

    /// Whether `query` lies in the subtree rooted at `sub`.
    pub fn in_subtree(&self, query: NodeId, sub: NodeId) -> bool {
        let mut cur = Some(query);
        while let Some(c) = cur {
            if c == sub {
                return true;
            }
            cur = self.parent[c as usize];
        }
        false
    }

    /// Total L1 length of all arcs. Nodes detached by
    /// [`contract_pass_throughs`](Self::contract_pass_throughs) do not
    /// contribute.
    pub fn length(&self) -> i64 {
        (1..self.num_nodes() as NodeId)
            .filter_map(|v| {
                let p = self.parent[v as usize]?;
                Some(self.pos[v as usize].l1(self.pos[p as usize]))
            })
            .sum()
    }

    /// Nodes in depth-first preorder starting at the root.
    pub fn dfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.num_nodes());
        let mut stack = vec![self.root()];
        while let Some(v) = stack.pop() {
            order.push(v);
            for &c in self.children(v).iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// L1 path length from the root to every node.
    pub fn depths(&self) -> Vec<i64> {
        let mut depth = vec![0i64; self.num_nodes()];
        for &v in &self.dfs_order() {
            if let Some(p) = self.parent(v) {
                depth[v as usize] =
                    depth[p as usize] + self.pos[v as usize].l1(self.pos[p as usize]);
            }
        }
        depth
    }

    /// Total sink delay weight inside each node's subtree. `weights` is
    /// indexed by sink index.
    pub fn subtree_weights(&self, weights: &[f64]) -> Vec<f64> {
        let order = self.dfs_order();
        let mut w = vec![0.0f64; self.num_nodes()];
        for &v in order.iter().rev() {
            if let NodeKind::Sink(s) = self.node_kind(v) {
                w[v as usize] += weights[s];
            }
            for &c in self.children(v) {
                let wc = w[c as usize];
                w[v as usize] += wc;
            }
        }
        w
    }

    /// Plane delay from the root to *every node* under the linear model:
    /// `delay_per_unit` per gcell of L1 length, plus λ-split bifurcation
    /// penalties per Eq. (3) at every node with exactly two children.
    ///
    /// # Panics
    ///
    /// Panics if some node has more than two children and `bif.dbif > 0`
    /// — call [`binarize`](Self::binarize) first.
    pub fn node_delays(
        &self,
        weights: &[f64],
        delay_per_unit: f64,
        bif: &BifurcationConfig,
    ) -> Vec<f64> {
        let sub_w = self.subtree_weights(weights);
        let mut delay = vec![0.0f64; self.num_nodes()];
        for &v in &self.dfs_order() {
            let kids = self.children(v);
            if kids.len() > 2 && bif.dbif > 0.0 {
                // INVARIANT: documented precondition - callers binarize before evaluating with dbif > 0.
                panic!("bifurcation penalties need a binarized topology");
            }
            let lambdas: Vec<f64> = if kids.len() == 2 {
                let (lx, ly) =
                    lambda_split(sub_w[kids[0] as usize], sub_w[kids[1] as usize], bif.eta);
                vec![lx, ly]
            } else {
                vec![0.0; kids.len()]
            };
            for (i, &c) in kids.iter().enumerate() {
                delay[c as usize] = delay[v as usize]
                    + self.pos[c as usize].l1(self.pos[v as usize]) as f64 * delay_per_unit
                    + lambdas[i] * bif.dbif;
            }
        }
        delay
    }

    /// Plane delay from the root to every sink; see
    /// [`node_delays`](Self::node_delays). Returns (sink index, delay)
    /// pairs.
    ///
    /// # Panics
    ///
    /// As for [`node_delays`](Self::node_delays).
    pub fn sink_delays(
        &self,
        weights: &[f64],
        delay_per_unit: f64,
        bif: &BifurcationConfig,
    ) -> Vec<(usize, f64)> {
        let delay = self.node_delays(weights, delay_per_unit, bif);
        self.sink_nodes().into_iter().map(|(s, v)| (s, delay[v as usize])).collect()
    }

    /// Plane proxy of the cost-distance objective: `cost_per_unit × total
    /// length + Σ_t w(t)·delay(t)`. The baselines minimize this before
    /// embedding.
    pub fn plane_objective(
        &self,
        weights: &[f64],
        cost_per_unit: f64,
        delay_per_unit: f64,
        bif: &BifurcationConfig,
    ) -> f64 {
        let wl = self.length() as f64 * cost_per_unit;
        let delay_cost: f64 = self
            .sink_delays(weights, delay_per_unit, bif)
            .iter()
            .map(|&(s, d)| weights[s] * d)
            .sum();
        wl + delay_cost
    }

    /// Returns an equivalent *bifurcation-compatible* tree: the root and
    /// all sinks are leaves, and every internal node has at most two
    /// children. Extra nodes are inserted at identical positions, so no
    /// arc length or root–sink distance changes (§I: "as we allow
    /// multiple vertices with the same position, any Steiner tree can be
    /// transformed into such a tree without changing the total length or
    /// any source-sink length").
    pub fn binarize(&self) -> Topology {
        let mut out = Topology::new(self.position(self.root()));
        // Map old node -> new "attachment" node under which old children hang.
        let mut attach = vec![0 as NodeId; self.num_nodes()];
        for &v in &self.dfs_order() {
            if v == self.root() {
                if self.children(v).is_empty() {
                    attach[v as usize] = out.root();
                } else {
                    // root must be a leaf: hang everything under a Steiner twin
                    let s = out.add_steiner(self.position(v), out.root());
                    attach[v as usize] = s;
                }
                continue;
            }
            // INVARIANT: the root was handled and skipped earlier in the loop, so v has a parent.
            let parent_attach = attach[self.parent(v).expect("non-root") as usize];
            // find a free slot (≤ 2 children) at the parent's attachment,
            // extending with same-position Steiner nodes as needed
            let slot = out.free_slot(parent_attach);
            match self.node_kind(v) {
                NodeKind::Sink(s) => {
                    if self.children(v).is_empty() {
                        out.add_sink(s, self.position(v), slot);
                        attach[v as usize] = slot; // unused
                    } else {
                        // sink with children: Steiner twin carries the subtree,
                        // the sink itself becomes a leaf under it
                        let tw = out.add_steiner(self.position(v), slot);
                        out.add_sink(s, self.position(v), tw);
                        attach[v as usize] = tw;
                    }
                }
                NodeKind::Steiner => {
                    let s = out.add_steiner(self.position(v), slot);
                    attach[v as usize] = s;
                }
                // INVARIANT: the single root was handled before the match, and no other node carries Root kind.
                NodeKind::Root => unreachable!("only one root"),
            }
        }
        out
    }

    /// Walks down same-position Steiner extensions of `v` until a node
    /// with fewer than two children is found (fewer than one for the
    /// root), inserting zero-length extension Steiner nodes as necessary.
    /// The returned node can take one more child without breaking
    /// bifurcation compatibility. Used by [`binarize`](Self::binarize)
    /// and by baselines that grow binary trees incrementally.
    pub fn attach_slot(&mut self, v: NodeId) -> NodeId {
        self.free_slot(v)
    }

    fn free_slot(&mut self, v: NodeId) -> NodeId {
        let mut cur = v;
        loop {
            let is_root = cur == self.root();
            let cap = if is_root { 1 } else { 2 };
            if self.children(cur).len() < cap {
                return cur;
            }
            // push one existing child chainwise: add an extension Steiner
            // node at the same position adopting the last child slot
            let pos = self.position(cur);
            // INVARIANT: cur was selected for exceeding the child cap (cap >= 1), so it has at least one child.
            let last = *self.children(cur).last().expect("cap > 0");
            let ext = self.add_steiner(pos, cur);
            self.reparent(last, ext);
            cur = ext;
        }
    }

    /// Removes pass-through Steiner nodes (exactly one child, collinear
    /// or not — position is kept implicitly by L1 additivity only when
    /// collinear, so only *zero-detour* pass-throughs are removed).
    /// Returns the number of nodes removed.
    pub fn contract_pass_throughs(&mut self) -> usize {
        let mut removed = 0;
        for v in 1..self.num_nodes() as NodeId {
            if self.node_kind(v) != NodeKind::Steiner || self.children(v).len() != 1 {
                continue;
            }
            let p = match self.parent(v) {
                Some(p) => p,
                None => continue,
            };
            let c = self.children(v)[0];
            let direct = self.pos[p as usize].l1(self.pos[c as usize]);
            let via_v = self.pos[p as usize].l1(self.pos[v as usize])
                + self.pos[v as usize].l1(self.pos[c as usize]);
            if direct == via_v {
                self.reparent(c, p);
                self.children[p as usize].retain(|&x| x != v);
                self.parent[v as usize] = None; // detached; ids stay stable
                removed += 1;
            }
        }
        removed
    }

    /// Checks structural invariants (each non-root reachable from the
    /// root, parent/child symmetry). Returns an error string on failure.
    pub fn validate(&self) -> Result<(), String> {
        let order = self.dfs_order();
        let mut seen = vec![false; self.num_nodes()];
        for &v in &order {
            if seen[v as usize] {
                return Err(format!("node {v} visited twice (cycle)"));
            }
            seen[v as usize] = true;
            for &c in self.children(v) {
                if self.parent(c) != Some(v) {
                    return Err(format!("child {c} of {v} disagrees about its parent"));
                }
            }
        }
        // detached nodes (from contract_pass_throughs) are tolerated only
        // if they are Steiner nodes with no children
        for v in 0..self.num_nodes() as NodeId {
            if !seen[v as usize]
                && (self.node_kind(v) != NodeKind::Steiner || !self.children(v).is_empty())
            {
                return Err(format!("node {v} unreachable from the root"));
            }
        }
        Ok(())
    }

    /// Whether the tree is bifurcation compatible: root and sinks are
    /// leaves, internal nodes have at most two children.
    pub fn is_bifurcation_compatible(&self) -> bool {
        if self.children(self.root()).len() > 1 {
            return false;
        }
        (1..self.num_nodes() as NodeId).all(|v| match self.node_kind(v) {
            NodeKind::Sink(_) => self.children(v).is_empty(),
            _ => self.children(v).len() <= 2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn star(n: usize) -> (Topology, Vec<f64>) {
        let mut t = Topology::new(Point::new(0, 0));
        for i in 0..n {
            t.add_sink(i, Point::new(i as i32 + 1, 0), t.root());
        }
        (t, vec![1.0; n])
    }

    #[test]
    fn star_length_and_delays() {
        let (t, w) = star(3);
        assert_eq!(t.length(), 1 + 2 + 3);
        let mut d = t.sink_delays(&w, 2.0, &BifurcationConfig::ZERO);
        d.sort_by_key(|a| a.0);
        assert_eq!(d, vec![(0, 2.0), (1, 4.0), (2, 6.0)]);
    }

    #[test]
    fn binarize_makes_compatible_and_preserves_metrics() {
        let (t, w) = star(5);
        assert!(!t.is_bifurcation_compatible());
        let b = t.binarize();
        b.validate().unwrap();
        assert!(b.is_bifurcation_compatible());
        assert_eq!(b.length(), t.length());
        // with dbif = 0, sink delays are unchanged
        let mut d0 = t.sink_delays(&w, 1.0, &BifurcationConfig::ZERO);
        let mut d1 = b.sink_delays(&w, 1.0, &BifurcationConfig::ZERO);
        d0.sort_by_key(|a| a.0);
        d1.sort_by_key(|a| a.0);
        for ((s0, x), (s1, y)) in d0.iter().zip(&d1) {
            assert_eq!(s0, s1);
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn lambda_penalty_favours_heavy_subtree() {
        // root -- s with two sinks; sink 0 heavy, sink 1 light
        let mut t = Topology::new(Point::new(0, 0));
        let s = t.add_steiner(Point::new(1, 0), t.root());
        t.add_sink(0, Point::new(2, 0), s);
        t.add_sink(1, Point::new(1, 1), s);
        let w = vec![10.0, 1.0];
        let bif = BifurcationConfig::new(4.0, 0.25);
        let delays = t.sink_delays(&w, 1.0, &bif);
        let d: std::collections::HashMap<usize, f64> = delays.into_iter().collect();
        // heavy sink gets λ = η = 0.25 → penalty 1.0; light gets 3.0
        assert!((d[&0] - (2.0 + 1.0)).abs() < 1e-9);
        assert!((d[&1] - (2.0 + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn reparent_and_split() {
        let mut t = Topology::new(Point::new(0, 0));
        let a = t.add_sink(0, Point::new(4, 0), t.root());
        let s = t.split_arc(a, Point::new(2, 0));
        assert_eq!(t.parent(a), Some(s));
        assert_eq!(t.length(), 4);
        let b = t.add_sink(1, Point::new(2, 2), s);
        assert_eq!(t.length(), 6);
        t.reparent(b, t.root());
        assert_eq!(t.length(), 4 + 4);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn reparent_into_own_subtree_panics() {
        let mut t = Topology::new(Point::new(0, 0));
        let s = t.add_steiner(Point::new(1, 0), t.root());
        let c = t.add_steiner(Point::new(2, 0), s);
        t.reparent(s, c);
    }

    #[test]
    fn contract_removes_collinear_pass_through() {
        let mut t = Topology::new(Point::new(0, 0));
        let s = t.add_steiner(Point::new(1, 0), t.root());
        t.add_sink(0, Point::new(3, 0), s);
        assert_eq!(t.contract_pass_throughs(), 1);
        assert_eq!(t.length(), 3);
        t.validate().unwrap();
    }

    proptest! {
        /// binarize preserves total length and all root–sink distances on
        /// random topologies.
        #[test]
        fn binarize_preserves(parents in proptest::collection::vec(0usize..8, 1..12),
                              xs in proptest::collection::vec((-20i32..20, -20i32..20), 12)) {
            let mut t = Topology::new(Point::new(0, 0));
            let mut ids = vec![t.root()];
            for (i, &p) in parents.iter().enumerate() {
                let parent = ids[p.min(ids.len() - 1)];
                let (x, y) = xs[i];
                // alternate sinks and steiner nodes
                let id = if i % 2 == 0 {
                    t.add_sink(i / 2, Point::new(x, y), parent)
                } else {
                    t.add_steiner(Point::new(x, y), parent)
                };
                ids.push(id);
            }
            let nsinks = parents.len().div_ceil(2);
            let w = vec![1.0; nsinks];
            let b = t.binarize();
            b.validate().unwrap();
            prop_assert!(b.is_bifurcation_compatible());
            prop_assert_eq!(b.length(), t.length());
            let mut d0 = t.sink_delays(&w, 1.0, &BifurcationConfig::ZERO);
            let mut d1 = b.sink_delays(&w, 1.0, &BifurcationConfig::ZERO);
            d0.sort_by_key(|a| a.0);
            d1.sort_by_key(|a| a.0);
            prop_assert_eq!(d0.len(), d1.len());
            for (x, y) in d0.iter().zip(&d1) {
                prop_assert_eq!(x.0, y.0);
                prop_assert!((x.1 - y.1).abs() < 1e-9);
            }
        }
    }
}
