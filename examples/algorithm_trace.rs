//! Watching Algorithm 1 run (paper Fig. 3).
//!
//! Solves a 5-sink instance with tracing enabled and narrates every
//! iteration: which terminal's Dijkstra found which other terminal,
//! where the new Steiner vertex was placed, and when components connect
//! to the root.
//!
//! ```text
//! cargo run --release --example algorithm_trace
//! ```

use cds_core::{MergeEvent, Request, Solver};
use cds_graph::GridSpec;
use cds_topo::BifurcationConfig;

fn main() {
    let grid = GridSpec::uniform(20, 20, 2).build();
    let cost = grid.graph().base_costs();
    let delay = grid.graph().delays();
    let sinks = [
        grid.vertex(3, 16, 0),
        grid.vertex(8, 14, 0),
        grid.vertex(16, 12, 0),
        grid.vertex(5, 5, 0),
        grid.vertex(14, 3, 0),
    ];
    // dot sizes of the paper's figure = delay weights
    let weights = [2.0, 0.5, 1.0, 0.7, 1.4];
    let req = Request::new(grid.graph(), &cost, &delay, grid.vertex(10, 10, 0), &sinks, &weights)
        .with_bif(BifurcationConfig::new(5.0, 0.25))
        .with_trace();
    let result = Solver::new().solve(&req);
    let coord = |v: u32| {
        let c = grid.coord(v);
        format!("({:2},{:2})", c.x, c.y)
    };
    println!("Algorithm 1 on 5 sinks (weights {weights:?}):\n");
    for ev in &result.trace {
        match *ev {
            MergeEvent::SinkSink {
                iteration,
                u_vertex,
                v_vertex,
                steiner_vertex,
                l_value,
                path_edges,
            } => println!(
                "iteration {iteration}: merge {} + {} → Steiner {} \
                 | L(u,v) = {l_value:7.2} | {path_edges} edges",
                coord(u_vertex),
                coord(v_vertex),
                coord(steiner_vertex)
            ),
            MergeEvent::RootConnect { iteration, u_vertex, l_value, path_edges } => println!(
                "iteration {iteration}: root connection from {}          \
                 | L(u,r) = {l_value:7.2} | {path_edges} edges",
                coord(u_vertex)
            ),
        }
    }
    println!(
        "\nresult: objective {:.2}, {} merges, {} labels settled",
        result.evaluation.total, result.stats.merges, result.stats.settled
    );
}
