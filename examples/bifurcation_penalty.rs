//! The effect of bifurcation penalties on tree topology (paper Fig. 1).
//!
//! Routes the same net — one critical sink behind a corridor of light
//! fan-out sinks — with and without the bifurcation penalty `d_bif`, and
//! shows how the penalty pushes bifurcations off the critical path
//! (fewer branchings between root and the critical sink), at a small
//! wirelength premium.
//!
//! ```text
//! cargo run --release --example bifurcation_penalty
//! ```

use cds_geom::Point;
use cds_graph::GridSpec;
use cds_router::{OracleRequest, OracleWorkspace, SteinerMethod, SteinerOracle};
use cds_topo::BifurcationConfig;

fn main() {
    let grid = GridSpec::uniform(26, 12, 4).build();
    let cost = grid.graph().base_costs();
    let delay = grid.graph().delays();

    // critical sink at the far end, light sinks along the way
    let mut sinks = vec![Point::new(25, 6)];
    for i in 0..10 {
        sinks.push(Point::new(2 + 2 * i, if i % 2 == 0 { 4 } else { 8 }));
    }
    let mut weights = vec![6.0];
    weights.extend(std::iter::repeat_n(0.05, 10));

    println!("same net, with and without bifurcation penalties (CD oracle):\n");
    // one oracle + one warm workspace for all three configurations
    let oracle: &dyn SteinerOracle = SteinerMethod::Cd.oracle();
    let mut ws = OracleWorkspace::new();
    for (label, bif) in [
        ("d_bif = 0        ", BifurcationConfig::ZERO),
        ("d_bif = 9, η=0.25", BifurcationConfig::new(9.0, 0.25)),
        ("d_bif = 9, η=0.5 ", BifurcationConfig::new(9.0, 0.5)),
    ] {
        let req = OracleRequest {
            surface: &grid,
            cost: &cost,
            delay: &delay,
            root: Point::new(0, 6),
            sinks: &sinks,
            weights: &weights,
            budgets: None,
            bif,
            seed: 11,
        };
        let tree = oracle.route(&req, &mut ws);
        let ev = tree.evaluate(&cost, &delay, &weights, &bif);
        let crit = tree
            .sink_nodes()
            .into_iter()
            .find(|&(s, _)| s == 0)
            .map(|(_, n)| n)
            .expect("critical sink present");
        println!(
            "{label}: {} bifurcations on critical path, critical delay {:6.1} ps, \
             wirelength {:5.0} gcells, objective {:8.1}",
            tree.bifurcations_on_path(crit),
            ev.sink_delays[0],
            tree.wirelength(grid.graph()),
            ev.total,
        );
    }
    println!(
        "\nη = 0.25 lets buffering shield the critical branch (λ as low as 1/4);\n\
         η = 0.5 is the rigid historical model — every branch pays half."
    );
}
