//! Quickstart: solve cost-distance Steiner tree instances through a
//! solver session.
//!
//! Builds a small 3D global routing grid, creates a [`Solver`] session,
//! and routes a net with a critical and a few non-critical sinks — then
//! routes a second net through the *same* session to show the
//! workspace-reuse API (no reallocation, bit-identical results to
//! fresh-per-call solving).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cds_core::{GridFutureCost, Request, Solver};
use cds_graph::GridSpec;
use cds_topo::BifurcationConfig;

fn main() {
    // a 16×16 gcell grid with 4 alternating-direction layers
    let grid = GridSpec::uniform(16, 16, 4).build();
    let cost = grid.graph().base_costs();
    let delay = grid.graph().delays();

    // one session for all nets: buffers warm up once, then get reused
    let mut solver = Solver::builder().seed(0x5eed).build();

    // net 1: root bottom-left, one critical sink (w = 4) far away,
    // three cheap fan-out sinks
    let root = grid.vertex(0, 0, 0);
    let sinks = [
        grid.vertex(15, 15, 0), // critical
        grid.vertex(4, 2, 0),
        grid.vertex(2, 9, 0),
        grid.vertex(11, 3, 0),
    ];
    let weights = [4.0, 0.1, 0.1, 0.1];

    // goal-oriented search needs an admissible future cost per net
    let mut terminals = sinks.to_vec();
    terminals.push(root);
    let fc = GridFutureCost::new(&grid, &terminals);

    let req = Request::new(grid.graph(), &cost, &delay, root, &sinks, &weights)
        .with_bif(BifurcationConfig::new(6.0, 0.25)) // d_bif = 6 ps, η = 1/4
        .with_future(&fc);
    let result = solver.solve(&req);
    result
        .tree
        .validate(grid.graph(), sinks.len())
        .expect("solver output is always a valid embedded tree");

    println!("cost-distance Steiner tree for 1 root + {} sinks", sinks.len());
    println!("  objective (Eq. 1):   {:.2}", result.evaluation.total);
    println!("  connection cost:     {:.2}", result.evaluation.connection_cost);
    println!("  weighted delay cost: {:.2}", result.evaluation.delay_cost);
    println!("  bifurcations:        {}", result.evaluation.bifurcations);
    println!("  wirelength:          {} gcells", result.tree.wirelength(grid.graph()));
    println!("  vias:                {}", result.tree.via_count(grid.graph()));
    for (i, d) in result.evaluation.sink_delays.iter().enumerate() {
        println!("  sink {i}: delay {d:.2} ps (weight {})", weights[i]);
    }
    println!("  work: {} labels settled, {} merges", result.stats.settled, result.stats.merges);

    // net 2 reuses the warmed-up workspace — same API, no reallocation
    let sinks2 = [grid.vertex(1, 14, 0), grid.vertex(14, 1, 0)];
    let req2 = Request::new(grid.graph(), &cost, &delay, root, &sinks2, &[1.0, 1.0]);
    let result2 = solver.solve(&req2);
    println!(
        "\nsecond net through the same session: objective {:.2} ({} solves served)",
        result2.evaluation.total,
        solver.solves()
    );
}
