//! Quickstart: solve one cost-distance Steiner tree instance.
//!
//! Builds a small 3D global routing grid, places a net with a critical
//! and a few non-critical sinks, runs the paper's algorithm with all
//! enhancements, and prints the tree and its objective breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cds_core::{solve, GridFutureCost, Instance, SolverOptions};
use cds_graph::GridSpec;
use cds_topo::BifurcationConfig;

fn main() {
    // a 16×16 gcell grid with 4 alternating-direction layers
    let grid = GridSpec::uniform(16, 16, 4).build();
    let cost = grid.graph().base_costs();
    let delay = grid.graph().delays();

    // one net: root bottom-left, one critical sink (w = 4) far away,
    // three cheap fan-out sinks
    let root = grid.vertex(0, 0, 0);
    let sinks = [
        grid.vertex(15, 15, 0), // critical
        grid.vertex(4, 2, 0),
        grid.vertex(2, 9, 0),
        grid.vertex(11, 3, 0),
    ];
    let weights = [4.0, 0.1, 0.1, 0.1];

    let inst = Instance {
        graph: grid.graph(),
        cost: &cost,
        delay: &delay,
        root,
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::new(6.0, 0.25), // d_bif = 6 ps, η = 1/4
    };

    // goal-oriented search needs an admissible future cost for this grid
    let mut terminals = sinks.to_vec();
    terminals.push(root);
    let fc = GridFutureCost::new(&grid, &terminals);

    let result = solve(&inst, &SolverOptions::enhanced(&fc));
    result
        .tree
        .validate(grid.graph(), sinks.len())
        .expect("solver output is always a valid embedded tree");

    println!("cost-distance Steiner tree for 1 root + {} sinks", sinks.len());
    println!("  objective (Eq. 1):   {:.2}", result.evaluation.total);
    println!("  connection cost:     {:.2}", result.evaluation.connection_cost);
    println!("  weighted delay cost: {:.2}", result.evaluation.delay_cost);
    println!("  bifurcations:        {}", result.evaluation.bifurcations);
    println!("  wirelength:          {} gcells", result.tree.wirelength(grid.graph()));
    println!("  vias:                {}", result.tree.via_count(grid.graph()));
    for (i, d) in result.evaluation.sink_delays.iter().enumerate() {
        println!("  sink {i}: delay {d:.2} ps (weight {})", weights[i]);
    }
    println!(
        "  work: {} labels settled, {} merges",
        result.stats.settled, result.stats.merges
    );
}
