//! Timing-constrained global routing of a synthetic chip.
//!
//! Generates a small synthetic chip (clustered nets, timing chains,
//! macro hot spots), routes it with the cost-distance oracle inside the
//! Lagrangean rip-up & re-route loop, and prints the paper's headline
//! metrics (WS / TNS / ACE4 / wirelength / vias) plus the most congested
//! edges.
//!
//! ```text
//! cargo run --release --example timing_driven_routing
//! ```

use cds_instgen::ChipSpec;
use cds_metrics::{overflowed_edges, wire_congestion};
use cds_router::{Router, RouterConfig, SteinerMethod};

fn main() {
    let chip =
        ChipSpec { name: "demo".into(), num_nets: 300, ..ChipSpec::small_test(2024) }.generate();
    println!(
        "chip {}: {} nets, {}×{} gcells, {} layers, d_bif = {:.2} ps",
        chip.name,
        chip.nets.len(),
        chip.grid.spec().nx,
        chip.grid.spec().ny,
        chip.grid.spec().layers.len(),
        chip.delay_model.dbif_ps()
    );

    for method in SteinerMethod::ALL {
        let config =
            RouterConfig { method, iterations: 3, use_dbif: true, ..RouterConfig::default() };
        let out = Router::new(&chip, config).run();
        println!(
            "{method}: WS {:7.0} ps  TNS {:9.0} ps  ACE4 {:6.1}%  WL {:.4} m  vias {:5}  {:4.1}s",
            out.metrics.ws,
            out.metrics.tns,
            out.metrics.ace4,
            out.metrics.wl_m,
            out.metrics.vias,
            out.metrics.walltime_s,
        );
        if method == SteinerMethod::Cd {
            let cong = wire_congestion(chip.grid.graph(), &out.usage);
            let mut sorted = cong.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            println!(
                "   CD congestion detail: {} overflowed edges, top-5 utilization {:?}",
                overflowed_edges(chip.grid.graph(), &out.usage),
                &sorted[..5.min(sorted.len())]
                    .iter()
                    .map(|c| format!("{:.0}%", c * 100.0))
                    .collect::<Vec<_>>()
            );
        }
    }
}
