//! `cdst` — cost-distance Steiner trees for timing-constrained global
//! routing.
//!
//! Umbrella crate re-exporting the whole workspace: the paper's
//! algorithm ([`core`]), the routing substrates ([`graph`], [`delay`],
//! [`topo`]), the comparison baselines ([`baselines`], [`rsmt`],
//! [`embed`]), exact references ([`exact`]), and the experiment stack
//! ([`instgen`], [`router`], [`sta`], [`metrics`]).
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! system inventory; each sub-crate's documentation describes its slice
//! of the paper.
//!
//! # Examples
//!
//! ```
//! use cdst::core::{solve, Instance, SolverOptions};
//! use cdst::graph::GridSpec;
//! use cdst::topo::BifurcationConfig;
//!
//! let grid = GridSpec::uniform(8, 8, 2).build();
//! let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
//! let inst = Instance {
//!     graph: grid.graph(),
//!     cost: &c,
//!     delay: &d,
//!     root: grid.vertex(0, 0, 0),
//!     sink_vertices: &[grid.vertex(7, 7, 0)],
//!     weights: &[1.0],
//!     bif: BifurcationConfig::ZERO,
//! };
//! let result = solve(&inst, &SolverOptions::default());
//! assert!(result.evaluation.total > 0.0);
//! ```

pub use cds_baselines as baselines;
pub use cds_core as core;
pub use cds_delay as delay;
pub use cds_embed as embed;
pub use cds_exact as exact;
pub use cds_geom as geom;
pub use cds_graph as graph;
pub use cds_heap as heap;
pub use cds_instgen as instgen;
pub use cds_metrics as metrics;
pub use cds_router as router;
pub use cds_rsmt as rsmt;
pub use cds_sta as sta;
pub use cds_topo as topo;
