#![forbid(unsafe_code)]
//! `cdst` — cost-distance Steiner trees for timing-constrained global
//! routing.
//!
//! Umbrella crate re-exporting the whole workspace: the paper's
//! algorithm ([`core`]), the routing substrates ([`graph`], [`delay`],
//! [`topo`]), the comparison baselines ([`baselines`], [`rsmt`],
//! [`embed`]), exact references ([`exact`]), and the experiment stack
//! ([`instgen`], [`router`], [`sta`], [`metrics`]).
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! system inventory; each sub-crate's documentation describes its slice
//! of the paper.
//!
//! # Examples
//!
//! The session API: build a [`core::Solver`] once, route many nets over
//! its reusable workspace (results are bit-identical to fresh-per-call
//! [`core::solve`]):
//!
//! ```
//! use cdst::core::{Request, Solver};
//! use cdst::graph::GridSpec;
//!
//! let grid = GridSpec::uniform(8, 8, 2).build();
//! let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
//! let mut solver = Solver::builder().seed(1).build();
//! for k in 1..4u32 {
//!     let sinks = [grid.vertex(7, 7, 0), grid.vertex(k, 7, 0)];
//!     let req = Request::new(grid.graph(), &c, &d, grid.vertex(0, 0, 0), &sinks, &[1.0, 0.5]);
//!     let result = solver.solve(&req);
//!     assert!(result.evaluation.total > 0.0);
//! }
//! assert_eq!(solver.solves(), 3);
//! ```
//!
//! Routing through the open oracle interface (any
//! [`router::SteinerOracle`] plugs into the router):
//!
//! ```
//! use cdst::geom::Point;
//! use cdst::graph::GridSpec;
//! use cdst::router::{OracleRequest, OracleWorkspace, SteinerMethod, SteinerOracle};
//! use cdst::topo::BifurcationConfig;
//!
//! let grid = GridSpec::uniform(8, 8, 2).build();
//! let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
//! let req = OracleRequest {
//!     surface: &grid,
//!     cost: &c,
//!     delay: &d,
//!     root: Point::new(0, 0),
//!     sinks: &[Point::new(7, 7)],
//!     weights: &[1.0],
//!     budgets: None,
//!     bif: BifurcationConfig::ZERO,
//!     seed: 1,
//! };
//! let mut ws = OracleWorkspace::new();
//! for m in SteinerMethod::ALL {
//!     let tree = m.oracle().route(&req, &mut ws);
//!     tree.validate(grid.graph(), 1).unwrap();
//! }
//! ```

pub use cds_baselines as baselines;
pub use cds_core as core;
pub use cds_delay as delay;
pub use cds_embed as embed;
pub use cds_exact as exact;
pub use cds_geom as geom;
pub use cds_graph as graph;
pub use cds_heap as heap;
pub use cds_instgen as instgen;
pub use cds_metrics as metrics;
pub use cds_router as router;
pub use cds_rsmt as rsmt;
pub use cds_sta as sta;
pub use cds_topo as topo;
