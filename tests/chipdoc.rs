//! The `cdst/1` chip document contract, end to end:
//!
//! 1. **Round-trip totality** — for arbitrary valid documents
//!    (proptest), every string the writer emits is accepted by the
//!    parser and recovers the document bit-identically, and
//!    re-serializing reproduces the string byte-for-byte. Corrupting
//!    any record line fails with that line's 1-based number. The
//!    streaming reader is observationally identical to the owned parse
//!    on both counts (same chip, same first error).
//! 2. **Fixture pinning** — the archived documents under
//!    `tests/fixtures/` are byte-identical to what the generators
//!    produce today, routing the archived 300-net converging chip
//!    reproduces the pinned checksums for all four oracles at 1 and 4
//!    threads, and replaying the archived 120-request solver stream
//!    reproduces the sparse-era golden of `tests/determinism.rs`.

use cds_core::{QueueKind, Request, SolveResult, Solver};
use cds_geom::Point;
use cds_graph::GridGraph;
use cds_graph::{Direction, GridSpec, LayerSpec, WireTypeSpec};
use cds_instgen::io::doc::{
    chip_doc_to_string, parse_chip_doc, read_chip_streaming, ChipDoc, RequestRecord,
};
use cds_instgen::{Chain, ChainLink, ChipSpec, Net, SinkProfile};
use cds_router::{Router, RouterConfig, SteinerMethod};
use cds_topo::BifurcationConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with `cds-cli fixtures`)"))
}

/// Interesting f64s for the round-trip property: zeros of both signs,
/// subnormals, huge magnitudes, infinities — everything but NaN, which
/// the writer rejects by contract.
fn edge_f64(rng: &mut StdRng) -> f64 {
    const POOL: &[f64] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        1.0 / 3.0,
        1e-300,
        5e-324,
        f64::MIN_POSITIVE,
        1e300,
        f64::MAX,
        -f64::MAX,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ];
    match rng.gen_range(0..3) {
        0 => POOL[rng.gen_range(0..POOL.len())],
        1 => f64::from_bits(rng.gen::<u64>() & !f64::NAN.to_bits() | 1), // random finite-ish bits
        _ => rng.gen_range(-1e6..1e6),
    }
}

/// Like [`edge_f64`] but finite (for fields the format validates, e.g.
/// η, d_bif, gcell pitch).
fn finite_f64(rng: &mut StdRng) -> f64 {
    loop {
        let v = edge_f64(rng);
        if v.is_finite() {
            return v;
        }
    }
}

fn token(rng: &mut StdRng) -> String {
    let n = rng.gen_range(1..8);
    (0..n)
        .map(|_| {
            let chars = b"abcxyz_-.0129";
            chars[rng.gen_range(0..chars.len())] as char
        })
        .collect()
}

/// A random valid chip document: random grid, layers, wire types,
/// capacity overrides, sink-less and many-sink nets, chains, sparse
/// weights/budgets archives, config pairs, and request records.
fn arbitrary_doc(seed: u64) -> ChipDoc {
    let mut rng = StdRng::seed_from_u64(seed);
    let (nx, ny) = (rng.gen_range(1..10u32), rng.gen_range(1..10u32));
    let nl = rng.gen_range(1..5usize);
    let layers: Vec<LayerSpec> = (0..nl)
        .map(|_| LayerSpec {
            dir: if rng.gen() { Direction::Horizontal } else { Direction::Vertical },
            wire_types: (0..rng.gen_range(1..3))
                .map(|_| WireTypeSpec {
                    cost_per_gcell: edge_f64(&mut rng),
                    delay_per_gcell: edge_f64(&mut rng),
                    capacity: edge_f64(&mut rng),
                })
                .collect(),
        })
        .collect();
    let grid = GridSpec {
        nx,
        ny,
        layers,
        via_cost: edge_f64(&mut rng),
        via_delay: edge_f64(&mut rng),
        via_capacity: edge_f64(&mut rng),
        gcell_um: finite_f64(&mut rng).abs().max(1e-300),
    };
    let num_edges = cds_instgen::io::doc::spec_num_edges(&grid);
    let mut ecap: Vec<(u32, f64)> = Vec::new();
    for e in 0..num_edges as u32 {
        if ecap.len() < 40 && rng.gen::<f64>() < 0.1 {
            ecap.push((e, edge_f64(&mut rng)));
        }
    }
    let point =
        |rng: &mut StdRng| Point::new(rng.gen_range(0..nx as i32), rng.gen_range(0..ny as i32));
    let nets: Vec<Net> = (0..rng.gen_range(0..12usize))
        .map(|_| {
            let sinks = (0..rng.gen_range(0..5usize)).map(|_| point(&mut rng)).collect();
            Net { root: point(&mut rng), sinks }
        })
        .collect();
    let sinked: Vec<usize> = (0..nets.len()).filter(|&i| !nets[i].sinks.is_empty()).collect();
    let chains: Vec<Chain> = (0..rng.gen_range(0..4usize))
        .filter_map(|_| {
            if sinked.is_empty() {
                return None;
            }
            let len = rng.gen_range(1..=3.min(sinked.len()));
            let links: Vec<ChainLink> = (0..len)
                .map(|j| {
                    let net = sinked[rng.gen_range(0..sinked.len())];
                    let cont_sink = (j + 1 < len).then(|| rng.gen_range(0..nets[net].sinks.len()));
                    ChainLink { net, cont_sink }
                })
                .collect();
            Some(Chain { links, rat_ps: edge_f64(&mut rng) })
        })
        .collect();
    let sparse = |rng: &mut StdRng, nets: &[Net]| -> Vec<(usize, Vec<f64>)> {
        let mut out = Vec::new();
        for (i, net) in nets.iter().enumerate() {
            if rng.gen::<f64>() < 0.3 {
                out.push((i, (0..net.sinks.len()).map(|_| edge_f64(rng)).collect()));
            }
        }
        out
    };
    let weights = sparse(&mut rng, &nets);
    let budgets = sparse(&mut rng, &nets);
    let config: Vec<(String, String)> =
        (0..rng.gen_range(0..4usize)).map(|_| (token(&mut rng), token(&mut rng))).collect();
    let requests: Vec<RequestRecord> = (0..rng.gen_range(0..4usize))
        .map(|_| {
            let pin = |rng: &mut StdRng| {
                (rng.gen_range(0..nx), rng.gen_range(0..ny), rng.gen_range(0..nl as u8))
            };
            let k = rng.gen_range(1..5usize);
            RequestRecord {
                seed: rng.gen(),
                dbif: finite_f64(&mut rng).abs(),
                eta: [0.0, 0.25, 0.5][rng.gen_range(0..3usize)],
                root: pin(&mut rng),
                sinks: (0..k).map(|_| pin(&mut rng)).collect(),
                weights: (0..k).map(|_| edge_f64(&mut rng)).collect(),
            }
        })
        .collect();
    ChipDoc {
        name: token(&mut rng),
        tech_layers: rng.gen_range(2..16),
        cell_delay_ps: edge_f64(&mut rng),
        config,
        grid,
        ecap,
        nets,
        chains,
        weights,
        budgets,
        requests,
        state: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    /// Totality: the writer accepts every arbitrary valid document, the
    /// parser accepts every writer output and recovers the document
    /// bit-identically (PartialEq + byte-identical re-serialization,
    /// which distinguishes 0.0 from -0.0), and noise lines don't change
    /// the parse.
    #[test]
    fn writer_output_always_parses_bit_identically(seed in 0u64..1 << 48) {
        let doc = arbitrary_doc(seed);
        let text = chip_doc_to_string(&doc)
            .unwrap_or_else(|e| panic!("writer rejected a valid doc (seed {seed}): {e}"));
        let parsed = parse_chip_doc(&text)
            .unwrap_or_else(|e| panic!("parser rejected writer output (seed {seed}): {e}"));
        prop_assert_eq!(&parsed, &doc);
        prop_assert_eq!(chip_doc_to_string(&parsed).unwrap(), text.clone());

        // comments and blank lines are transparent anywhere
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let noisy: String = text
            .lines()
            .flat_map(|l| {
                let noise: &[&str] = match rng.gen_range(0..3) {
                    0 => &[""],
                    1 => &["# injected comment", "   "],
                    _ => &[],
                };
                noise.iter().copied().chain(std::iter::once(l)).collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
            .join("\n");
        prop_assert_eq!(parse_chip_doc(&noisy).unwrap(), doc);
    }

    /// The streaming reader is observationally identical to the owned
    /// parse: same chip (nets, chains, delay model, per-edge capacities
    /// bit-for-bit), same extras (config, archives, requests, state),
    /// and every `ecap` override applied in place.
    #[test]
    fn streaming_parse_equals_the_owned_parse(seed in 0u64..1 << 48) {
        let doc = arbitrary_doc(seed);
        let text = chip_doc_to_string(&doc).unwrap();
        let sc = read_chip_streaming(text.as_bytes())
            .unwrap_or_else(|e| panic!("streaming rejected writer output (seed {seed}): {e}"));
        prop_assert_eq!(sc.tech_layers, doc.tech_layers);
        prop_assert_eq!(&sc.config, &doc.config);
        prop_assert_eq!(&sc.requests, &doc.requests);
        prop_assert_eq!(&sc.state, &doc.state);
        // archives bit-for-bit (f64 == would conflate 0.0 with -0.0)
        for (got, want) in [(&sc.weights, &doc.weights), (&sc.budgets, &doc.budgets)] {
            prop_assert_eq!(got.len(), want.len());
            for ((gi, gv), (wi, wv)) in got.iter().zip(want) {
                prop_assert_eq!(gi, wi);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(gv), bits(wv));
            }
        }
        let owned = doc.build_chip();
        prop_assert_eq!(&sc.chip.nets, &owned.nets);
        prop_assert_eq!(&sc.chip.chains, &owned.chains);
        prop_assert_eq!(&sc.chip.delay_model, &owned.delay_model);
        let (a, b) = (sc.chip.grid.graph(), owned.grid.graph());
        prop_assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids() {
            prop_assert_eq!(a.edge(e).capacity.to_bits(), b.edge(e).capacity.to_bits());
        }
        prop_assert_eq!(sc.stats.ecap_applied, doc.ecap.len());
    }

    /// Corrupting any single record line fails the parse with exactly
    /// that line's 1-based number.
    #[test]
    fn corrupted_record_lines_report_their_line_number(seed in 0u64..1 << 48) {
        let doc = arbitrary_doc(seed);
        let text = chip_doc_to_string(&doc).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let records: Vec<usize> = (0..lines.len())
            .filter(|&i| {
                let t = lines[i].trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBAD);
        let target = records[rng.gen_range(0..records.len())];
        let corrupted: String = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == target {
                    format!("{l} ?garbage?\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let e = parse_chip_doc(&corrupted).unwrap_err();
        prop_assert_eq!(e.line, target + 1, "wrong line for {:?}: {}", lines[target], e);
        // the streaming reader reports the identical first error
        let se = read_chip_streaming(corrupted.as_bytes()).unwrap_err();
        prop_assert_eq!(se.line, e.line, "streaming error line diverged: {} vs {}", se, e);
        prop_assert_eq!(&se.message, &e.message);
    }
}

#[test]
fn chip_fixtures_match_their_generators_byte_for_byte() {
    let converging = ChipSpec {
        name: "converging".into(),
        num_nets: 300,
        utilization: 0.22,
        ..ChipSpec::small_test(5)
    };
    let congested = ChipSpec { name: "congested".into(), num_nets: 150, ..ChipSpec::small_test(7) };
    let fanout = ChipSpec {
        name: "fanout_heavy".into(),
        num_nets: 24,
        profile: SinkProfile::FanoutHeavy,
        ..ChipSpec::small_test(11)
    };
    for (name, spec) in [
        ("converging.cdst", converging),
        ("congested.cdst", congested),
        ("fanout_heavy.cdst", fanout),
    ] {
        let doc = ChipDoc::from_chip(&spec.generate()).unwrap();
        let text = chip_doc_to_string(&doc).unwrap();
        assert_eq!(
            fixture(name),
            text,
            "{name} is stale — regenerate with `cargo run -p cds-cli -- fixtures tests/fixtures`"
        );
    }
}

#[test]
fn archived_converging_chip_reproduces_pinned_checksums_for_all_oracles() {
    // The acceptance gate: `cds-cli route` on the archived 300-net
    // fixture (same code path: parse → build_chip → Router::run) must
    // reproduce these checksums for every oracle at 1 and 4 threads.
    let doc = parse_chip_doc(&fixture("converging.cdst")).unwrap();
    let chip = doc.build_chip();
    let pinned = [
        (SteinerMethod::Cd, 0x074e0d79eecbd350u64),
        (SteinerMethod::L1, 0xd3aad0c317ee3cef),
        (SteinerMethod::Sl, 0xd4ffe28f84c96614),
        (SteinerMethod::Pd, 0x7034b5cb1e74e621),
    ];
    for (method, want) in pinned {
        for threads in [1usize, 4] {
            let out = Router::new(
                &chip,
                RouterConfig { method, threads, iterations: 3, ..Default::default() },
            )
            .run();
            let got = out.checksum();
            assert_eq!(
                got, want,
                "{method} at {threads} threads drifted: {got:#018x} (pinned {want:#018x})"
            );
        }
    }
}

#[test]
fn sharded_routing_reproduces_the_unsharded_pinned_checksum() {
    // `shards=N` is a pure work-partition knob: per-net results depend
    // only on per-net inputs, and the merge folds in global net order,
    // so every shard × thread combination must land on the same pinned
    // checksum as the shards=1 runs above.
    let doc = parse_chip_doc(&fixture("converging.cdst")).unwrap();
    let chip = doc.build_chip();
    let want = 0x074e0d79eecbd350u64; // the Cd shards=1 pin above
    for shards in [2usize, 4, 8] {
        for threads in [1usize, 4] {
            let out = Router::new(
                &chip,
                RouterConfig { threads, shards, iterations: 3, ..Default::default() },
            )
            .run();
            let got = out.checksum();
            assert_eq!(
                got, want,
                "shards={shards} threads={threads} drifted: {got:#018x} (pinned {want:#018x})"
            );
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "48 fixture routes — minutes in debug; CI runs it via `cargo test --release`"
)]
fn bucket_queue_reproduces_pinned_checksums_on_all_fixture_chips() {
    // The bucket-queue acceptance sweep: every archived fixture chip ×
    // every oracle × 1/4 threads × both label-queue backends must land
    // on one pinned checksum. The queue knob is a pure performance
    // choice — `queue=heap` and `queue=bucket` pop the identical total
    // order `(key, search, vertex)`, so a single constant pins all four
    // (queue, threads) combinations byte-for-byte.
    let pinned: [(&str, [(SteinerMethod, u64); 4]); 3] = [
        (
            "converging.cdst",
            [
                (SteinerMethod::Cd, 0xbee5b3dda2d5696f),
                (SteinerMethod::L1, 0x00a64569b20c3474),
                (SteinerMethod::Sl, 0x32eb9ebee3c0112c),
                (SteinerMethod::Pd, 0xc66b58bba1c005e8),
            ],
        ),
        (
            "congested.cdst",
            [
                (SteinerMethod::Cd, 0x4e94d0c91b1e48fb),
                (SteinerMethod::L1, 0x7e9560af4bc5ca7c),
                (SteinerMethod::Sl, 0x0fd59c0eb3f8b5fd),
                (SteinerMethod::Pd, 0x6fa71d6a7f166f37),
            ],
        ),
        (
            "fanout_heavy.cdst",
            [
                (SteinerMethod::Cd, 0xee0de5fc1782b646),
                (SteinerMethod::L1, 0x7f5d4a379838b200),
                (SteinerMethod::Sl, 0x9dcb55e222f2f551),
                (SteinerMethod::Pd, 0xc5dda1bb1b41cc46),
            ],
        ),
    ];
    for (name, pins) in pinned {
        let chip = parse_chip_doc(&fixture(name)).unwrap().build_chip();
        for (method, want) in pins {
            for queue in [QueueKind::Heap, QueueKind::Bucket] {
                for threads in [1usize, 4] {
                    let out = Router::new(
                        &chip,
                        RouterConfig {
                            method,
                            threads,
                            iterations: 2,
                            queue,
                            ..Default::default()
                        },
                    )
                    .run();
                    let got = out.checksum();
                    assert_eq!(
                        got, want,
                        "{name} {method} queue={queue} threads={threads} drifted: \
                         {got:#018x} (pinned {want:#018x})"
                    );
                }
            }
        }
    }
}

#[test]
fn archived_fanout_heavy_chip_reproduces_its_pinned_checksum() {
    // The clock-tree-like scenario: 24 nets of 30-80 die-wide sinks.
    // Routing the archived document must reproduce the committed golden
    // (regenerate both with `cds-cli fixtures` when routing changes).
    let expect = fixture("fanout_heavy_cd.expect");
    let expect = u64::from_str_radix(expect.trim().trim_start_matches("0x"), 16).unwrap();
    let doc = parse_chip_doc(&fixture("fanout_heavy.cdst")).unwrap();
    let chip = doc.build_chip();
    let out = Router::new(&chip, RouterConfig { iterations: 3, ..RouterConfig::default() }).run();
    assert_eq!(out.checksum(), expect, "fanout_heavy golden is stale — rerun `cds-cli fixtures`");
    // sanity: the scenario really is high-fanout
    assert!(chip.nets.iter().all(|n| n.sinks.len() >= 30));
}

/// FNV-1a over one solve, exactly as `tests/determinism.rs` folds the
/// in-code stream.
fn fold_result(mut h: u64, r: &SolveResult) -> u64 {
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    eat(r.evaluation.total.to_bits());
    eat(r.stats.settled as u64);
    eat(r.stats.pushed as u64);
    eat(r.stats.merges as u64);
    for e in r.tree.edges() {
        eat(e as u64 + 1);
    }
    h
}

#[test]
fn archived_stream_fixtures_reproduce_the_sparse_era_golden() {
    // The 120-request heterogeneous stream, archived as three documents
    // (one per grid; request i sits at position i/3 of document i%3).
    // Replaying the archive round-robin must reproduce the golden the
    // in-code stream is pinned to — so the on-disk archive and the
    // in-code fixture are interchangeable.
    let docs: Vec<ChipDoc> = ["stream_8x8.cdst", "stream_12x9.cdst", "stream_15x15.cdst"]
        .iter()
        .map(|n| parse_chip_doc(&fixture(n)).unwrap())
        .collect();
    assert_eq!(docs.iter().map(|d| d.requests.len()).sum::<usize>(), 120);
    let grids: Vec<GridGraph> = docs.iter().map(|d| d.grid.clone().build()).collect();
    let envs: Vec<(Vec<f64>, Vec<f64>)> =
        grids.iter().map(|g| (g.graph().base_costs(), g.graph().delays())).collect();
    let mut session = Solver::new();
    let mut h = 0xcbf29ce484222325u64;
    let mut next = [0usize; 3];
    for i in 0..120usize {
        let gi = i % 3;
        let rec = &docs[gi].requests[next[gi]];
        next[gi] += 1;
        let grid = &grids[gi];
        let (cost, delay) = &envs[gi];
        let root = grid.vertex(rec.root.0, rec.root.1, rec.root.2);
        let sinks: Vec<u32> = rec.sinks.iter().map(|&(x, y, l)| grid.vertex(x, y, l)).collect();
        let req = Request::new(grid.graph(), cost, delay, root, &sinks, &rec.weights)
            .with_bif(BifurcationConfig::new(rec.dbif, rec.eta))
            .with_seed(rec.seed);
        h = fold_result(h, &session.solve(&req));
    }
    assert_eq!(
        h, 0x9e49cf690e3ee57b,
        "archived stream drifted from the pinned golden of tests/determinism.rs"
    );
}

#[test]
fn smoke_golden_matches_the_smoke_preset() {
    // the checksum CI's `cds-cli gen --preset smoke | cds-cli verify`
    // step gates on
    let expect = fixture("smoke_cd.expect");
    let expect = u64::from_str_radix(expect.trim().trim_start_matches("0x"), 16).unwrap();
    let chip =
        ChipSpec { name: "smoke".into(), num_nets: 40, ..ChipSpec::small_test(44) }.generate();
    let out = Router::new(&chip, RouterConfig::default()).run();
    assert_eq!(out.checksum(), expect, "smoke golden is stale — rerun `cds-cli fixtures`");
}
