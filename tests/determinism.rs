//! Determinism and thread-safety guarantees across the stack.
//!
//! Everything in this workspace is specified to be reproducible: same
//! seed → same bits, regardless of thread count or repetition. These
//! tests pin that contract, plus the `Send`/`Sync` properties the
//! parallel router relies on.

use cds_core::{solve, Instance, SolverOptions};
use cds_graph::GridSpec;
use cds_instgen::ChipSpec;
use cds_router::{Router, RouterConfig, SteinerMethod};
use cds_topo::BifurcationConfig;

#[test]
fn solver_bitwise_deterministic_across_repeats() {
    let grid = GridSpec::uniform(12, 12, 3).build();
    let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
    let sinks = [
        grid.vertex(11, 3, 0),
        grid.vertex(2, 11, 0),
        grid.vertex(7, 7, 0),
        grid.vertex(11, 11, 0),
        grid.vertex(1, 1, 0),
    ];
    let weights = [0.3, 1.7, 0.02, 2.4, 0.9];
    let inst = Instance {
        graph: grid.graph(),
        cost: &c,
        delay: &d,
        root: grid.vertex(0, 5, 0),
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::new(4.0, 0.25),
    };
    let runs: Vec<_> = (0..3)
        .map(|_| solve(&inst, &SolverOptions { seed: 77, ..Default::default() }))
        .collect();
    for r in &runs[1..] {
        assert_eq!(r.evaluation.total.to_bits(), runs[0].evaluation.total.to_bits());
        assert_eq!(r.stats, runs[0].stats);
        let edges: Vec<_> = r.tree.edges().collect();
        let edges0: Vec<_> = runs[0].tree.edges().collect();
        assert_eq!(edges, edges0, "identical edge sets, identical order");
    }
}

#[test]
fn different_seeds_may_differ_but_stay_valid() {
    // the randomized placement only matters without §III-D; exercise it
    let grid = GridSpec::uniform(10, 10, 2).build();
    let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
    let sinks = [grid.vertex(9, 0, 0), grid.vertex(0, 9, 0), grid.vertex(9, 9, 0)];
    let weights = [1.0, 1.0, 1.0];
    let inst = Instance {
        graph: grid.graph(),
        cost: &c,
        delay: &d,
        root: grid.vertex(0, 0, 0),
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::ZERO,
    };
    for seed in 0..12 {
        let opts = SolverOptions {
            better_steiner: false, // re-enable the random endpoint rule
            seed,
            ..Default::default()
        };
        let r = solve(&inst, &opts);
        r.tree.validate(grid.graph(), sinks.len()).unwrap();
    }
}

#[test]
fn router_identical_for_1_2_and_8_threads() {
    let chip = ChipSpec { num_nets: 40, ..ChipSpec::small_test(44) }.generate();
    let run = |threads| {
        Router::new(
            &chip,
            RouterConfig {
                threads,
                iterations: 2,
                method: SteinerMethod::Cd,
                ..Default::default()
            },
        )
        .run()
    };
    let (a, b, c) = (run(1), run(2), run(8));
    assert_eq!(a.metrics.tns.to_bits(), b.metrics.tns.to_bits());
    assert_eq!(b.metrics.tns.to_bits(), c.metrics.tns.to_bits());
    assert_eq!(a.usage, b.usage);
    assert_eq!(b.usage, c.usage);
}

#[test]
fn chip_generation_is_pure() {
    let spec = ChipSpec::small_test(123);
    let a = spec.generate();
    let b = spec.generate();
    assert_eq!(a.nets, b.nets);
    assert_eq!(
        a.grid.graph().num_edges(),
        b.grid.graph().num_edges()
    );
    // capacities (including macro depletion) are identical
    for e in a.grid.graph().edge_ids() {
        assert_eq!(
            a.grid.graph().edge(e).capacity.to_bits(),
            b.grid.graph().edge(e).capacity.to_bits()
        );
    }
}

#[test]
fn core_types_are_send_and_sync_where_needed() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    // the router shares these across worker threads
    assert_send_sync::<cds_graph::Graph>();
    assert_send_sync::<cds_graph::GridGraph>();
    assert_send_sync::<cds_graph::EdgeIndex>();
    assert_send_sync::<cds_instgen::Chip>();
    assert_send::<cds_topo::EmbeddedTree>();
    assert_send::<cds_core::SolveResult>();
}
