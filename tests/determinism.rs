//! Determinism and thread-safety guarantees across the stack.
//!
//! Everything in this workspace is specified to be reproducible: same
//! seed → same bits, regardless of thread count or repetition. These
//! tests pin that contract, plus the `Send`/`Sync` properties the
//! parallel router relies on.

use cds_core::{solve, Instance, Request, SolveResult, Solver, SolverOptions};
use cds_geom::Point;
use cds_graph::{EdgeIndex, GridGraph, GridSpec, GridWindow, RoutingSurface, WindowView};
use cds_instgen::ChipSpec;
use cds_router::{Router, RouterConfig, SteinerMethod};
use cds_topo::BifurcationConfig;
use proptest::prelude::*;

#[test]
fn solver_bitwise_deterministic_across_repeats() {
    let grid = GridSpec::uniform(12, 12, 3).build();
    let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
    let sinks = [
        grid.vertex(11, 3, 0),
        grid.vertex(2, 11, 0),
        grid.vertex(7, 7, 0),
        grid.vertex(11, 11, 0),
        grid.vertex(1, 1, 0),
    ];
    let weights = [0.3, 1.7, 0.02, 2.4, 0.9];
    let inst = Instance {
        graph: grid.graph(),
        cost: &c,
        delay: &d,
        root: grid.vertex(0, 5, 0),
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::new(4.0, 0.25),
    };
    let runs: Vec<_> =
        (0..3).map(|_| solve(&inst, &SolverOptions { seed: 77, ..Default::default() })).collect();
    for r in &runs[1..] {
        assert_eq!(r.evaluation.total.to_bits(), runs[0].evaluation.total.to_bits());
        assert_eq!(r.stats, runs[0].stats);
        let edges: Vec<_> = r.tree.edges().collect();
        let edges0: Vec<_> = runs[0].tree.edges().collect();
        assert_eq!(edges, edges0, "identical edge sets, identical order");
    }
}

#[test]
fn different_seeds_may_differ_but_stay_valid() {
    // the randomized placement only matters without §III-D; exercise it
    let grid = GridSpec::uniform(10, 10, 2).build();
    let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
    let sinks = [grid.vertex(9, 0, 0), grid.vertex(0, 9, 0), grid.vertex(9, 9, 0)];
    let weights = [1.0, 1.0, 1.0];
    let inst = Instance {
        graph: grid.graph(),
        cost: &c,
        delay: &d,
        root: grid.vertex(0, 0, 0),
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::ZERO,
    };
    for seed in 0..12 {
        let opts = SolverOptions {
            better_steiner: false, // re-enable the random endpoint rule
            seed,
            ..Default::default()
        };
        let r = solve(&inst, &opts);
        r.tree.validate(grid.graph(), sinks.len()).unwrap();
    }
}

/// One net of the synthetic request stream: grid index, sinks, weights,
/// penalty config, seed.
type StreamNet = (usize, Vec<u32>, Vec<f64>, BifurcationConfig, u64);

/// Builds a stream of ≥ 100 heterogeneous requests over several grids:
/// varying grid sizes, sink counts, weights, penalties, and seeds — the
/// shape of a rip-up & re-route request stream.
fn heterogeneous_stream(grids: &[GridGraph]) -> Vec<StreamNet> {
    let mut stream = Vec::new();
    for i in 0..120u64 {
        let gi = (i % grids.len() as u64) as usize;
        let grid = &grids[gi];
        let (nx, ny) = (grid.spec().nx, grid.spec().ny);
        let k = 1 + (i % 7) as u32;
        let sinks: Vec<u32> = (0..k)
            .map(|j| {
                grid.vertex(
                    (3 + i as u32 * 5 + j * 11) % nx,
                    (1 + i as u32 * 3 + j * 7) % ny,
                    (j as u8 % grid.spec().layers.len() as u8).min(1),
                )
            })
            .collect();
        let weights: Vec<f64> = (0..k).map(|j| 0.05 + (j as f64) * 0.4 + (i % 3) as f64).collect();
        let bif = if i % 2 == 0 {
            BifurcationConfig::ZERO
        } else {
            BifurcationConfig::new(3.0 + (i % 5) as f64, 0.25)
        };
        stream.push((gi, sinks, weights, bif, i * 31 + 7));
    }
    stream
}

fn assert_bit_identical(a: &SolveResult, b: &SolveResult, ctx: &str) {
    assert_eq!(
        a.evaluation.total.to_bits(),
        b.evaluation.total.to_bits(),
        "{ctx}: objective differs"
    );
    assert_eq!(a.stats, b.stats, "{ctx}: work counters differ");
    let ea: Vec<_> = a.tree.edges().collect();
    let eb: Vec<_> = b.tree.edges().collect();
    assert_eq!(ea, eb, "{ctx}: edge sets differ");
}

#[test]
fn solver_session_reuse_matches_fresh_per_call_over_100_requests() {
    // the session-API contract: a Solver reused across a long, mixed
    // request stream is bit-identical to fresh-per-call solve()
    let grids = [
        GridSpec::uniform(8, 8, 2).build(),
        GridSpec::uniform(12, 9, 3).build(),
        GridSpec::uniform(15, 15, 2).build(),
    ];
    let envs: Vec<(Vec<f64>, Vec<f64>)> =
        grids.iter().map(|g| (g.graph().base_costs(), g.graph().delays())).collect();
    let stream = heterogeneous_stream(&grids);
    assert!(stream.len() >= 100);
    let mut session = Solver::new();
    for (n, (gi, sinks, weights, bif, seed)) in stream.iter().enumerate() {
        let grid = &grids[*gi];
        let (cost, delay) = &envs[*gi];
        let root = grid.vertex(0, 0, 0);
        let req = Request::new(grid.graph(), cost, delay, root, sinks, weights)
            .with_bif(*bif)
            .with_seed(*seed);
        let fresh = solve(&req.instance(), &SolverOptions { seed: *seed, ..Default::default() });
        let reused = session.solve(&req);
        assert_bit_identical(&fresh, &reused, &format!("request {n}"));
    }
    assert_eq!(session.solves(), stream.len() as u64);
}

/// FNV-1a over the bit-exact outcome of one solve: objective bits, work
/// counters, and the edge list in tree order.
fn fold_result(mut h: u64, r: &SolveResult) -> u64 {
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    eat(r.evaluation.total.to_bits());
    eat(r.stats.settled as u64);
    eat(r.stats.pushed as u64);
    eat(r.stats.merges as u64);
    for e in r.tree.edges() {
        eat(e as u64 + 1);
    }
    h
}

/// Pins the exact results of the 120-request stream bit-for-bit. The
/// golden was re-pinned once when the label queues moved to the total
/// pop order `(key, search, vertex)` (the bucket-queue PR): equal-key
/// pops now resolve by search id then vertex id instead of heap
/// insertion history, which legitimately changes CD tie resolution.
/// Both queue backends reproduce this value — see
/// `queue_backends_match_bit_for_bit` in `cds-core` and the
/// queue=bucket sweep in `tests/chipdoc.rs`.
#[test]
fn stream_results_match_sparse_era_golden() {
    let grids = [
        GridSpec::uniform(8, 8, 2).build(),
        GridSpec::uniform(12, 9, 3).build(),
        GridSpec::uniform(15, 15, 2).build(),
    ];
    let envs: Vec<(Vec<f64>, Vec<f64>)> =
        grids.iter().map(|g| (g.graph().base_costs(), g.graph().delays())).collect();
    let mut session = Solver::new();
    let mut h = 0xcbf29ce484222325u64;
    for (gi, sinks, weights, bif, seed) in heterogeneous_stream(&grids) {
        let grid = &grids[gi];
        let (cost, delay) = &envs[gi];
        let req = Request::new(grid.graph(), cost, delay, grid.vertex(0, 0, 0), &sinks, &weights)
            .with_bif(bif)
            .with_seed(seed);
        h = fold_result(h, &session.solve(&req));
    }
    println!("stream golden: {h:#018x}");
    assert_eq!(h, 0x9e49cf690e3ee57b, "solver results drifted from the pinned stream golden");
}

#[test]
fn solve_batch_matches_sequential_across_thread_counts() {
    let grids = [GridSpec::uniform(10, 10, 2).build(), GridSpec::uniform(7, 13, 3).build()];
    let envs: Vec<(Vec<f64>, Vec<f64>)> =
        grids.iter().map(|g| (g.graph().base_costs(), g.graph().delays())).collect();
    let stream = heterogeneous_stream(&grids);
    let reqs: Vec<Request<'_>> = stream
        .iter()
        .map(|(gi, sinks, weights, bif, seed)| {
            let grid = &grids[*gi];
            let (cost, delay) = &envs[*gi];
            Request::new(grid.graph(), cost, delay, grid.vertex(0, 0, 0), sinks, weights)
                .with_bif(*bif)
                .with_seed(*seed)
        })
        .collect();
    let mut session = Solver::new();
    let sequential: Vec<SolveResult> = reqs.iter().map(|r| session.solve(r)).collect();
    for threads in [2, 5, 8] {
        let batched = session.solve_batch(&reqs, threads);
        assert_eq!(batched.len(), sequential.len());
        for (n, (s, b)) in sequential.iter().zip(&batched).enumerate() {
            assert_bit_identical(s, b, &format!("threads {threads}, request {n}"));
        }
    }
}

#[test]
fn router_identical_for_1_2_and_8_threads() {
    let chip = ChipSpec { num_nets: 40, ..ChipSpec::small_test(44) }.generate();
    let run = |threads| {
        Router::new(
            &chip,
            RouterConfig {
                threads,
                iterations: 2,
                method: SteinerMethod::Cd,
                ..Default::default()
            },
        )
        .run()
    };
    let (a, b, c) = (run(1), run(2), run(8));
    assert_eq!(a.metrics.tns.to_bits(), b.metrics.tns.to_bits());
    assert_eq!(b.metrics.tns.to_bits(), c.metrics.tns.to_bits());
    assert_eq!(a.usage, b.usage);
    assert_eq!(b.usage, c.usage);
}

#[test]
fn window_view_solves_bit_identical_to_materialized_windows() {
    // The two graph backends — a materialized per-window GridGraph with
    // sliced cost/delay vectors, and the zero-copy WindowView over the
    // global grid with global arrays — must produce bit-identical trees
    // for a 120-net stream of varying windows, sink counts, weights,
    // penalties, and seeds.
    let grid = GridSpec::uniform(24, 20, 3).build();
    let index = EdgeIndex::new(&grid);
    let base = grid.graph().base_costs();
    let prices: Vec<f64> =
        base.iter().enumerate().map(|(e, &c)| c * (1.0 + 0.1 * ((e % 7) as f64))).collect();
    let delays = grid.graph().delays();
    let mut view_session = Solver::new();
    let mut mat_session = Solver::new();
    for i in 0..120u64 {
        let k = 1 + (i % 6);
        let root = Point::new((i * 7 % 24) as i32, (i * 5 % 20) as i32);
        let sinks: Vec<Point> = (0..k)
            .map(|j| {
                Point::new(((3 + i * 11 + j * 13) % 24) as i32, ((1 + i * 3 + j * 7) % 20) as i32)
            })
            .collect();
        let mut pins = vec![root];
        pins.extend_from_slice(&sinks);
        let margin = 2 + (i % 4) as u32;
        let weights: Vec<f64> = (0..k).map(|j| 0.1 + j as f64 * 0.5).collect();
        let bif = BifurcationConfig::new((i % 4) as f64, 0.25);
        let seed = i * 17 + 3;

        let window = GridWindow::around(&grid, &index, &pins, margin);
        let wcost = window.slice(&prices);
        let wdelay = window.slice(&delays);
        let wroot = window.grid.vertex_at(window.localize(root));
        let wsinks: Vec<u32> =
            sinks.iter().map(|&p| window.grid.vertex_at(window.localize(p))).collect();
        let mat = mat_session.solve(
            &Request::new(window.grid.graph(), &wcost, &wdelay, wroot, &wsinks, &weights)
                .with_bif(bif)
                .with_seed(seed),
        );

        let view = WindowView::around(&grid, &pins, margin);
        let vroot = view.vertex_at(view.localize(root));
        let vsinks: Vec<u32> = sinks.iter().map(|&p| view.vertex_at(view.localize(p))).collect();
        let vw = view_session.solve(
            &Request::new(&view, &prices, &delays, vroot, &vsinks, &weights)
                .with_bif(bif)
                .with_seed(seed),
        );

        assert_eq!(
            mat.evaluation.total.to_bits(),
            vw.evaluation.total.to_bits(),
            "net {i}: objectives differ across backends"
        );
        assert_eq!(mat.stats, vw.stats, "net {i}: work counters differ across backends");
        let mat_edges: Vec<u32> =
            mat.tree.edges().map(|e| window.to_global_edge[e as usize]).collect();
        let view_edges: Vec<u32> = vw.tree.edges().collect();
        assert_eq!(mat_edges, view_edges, "net {i}: trees differ across backends");
    }
}

#[test]
fn router_view_and_materialized_windows_bit_identical() {
    // Router::run over zero-copy window views ≡ over materialized
    // windows, for every built-in oracle.
    let chip = ChipSpec { num_nets: 30, ..ChipSpec::small_test(44) }.generate();
    for method in SteinerMethod::ALL {
        let run = |materialize_windows| {
            Router::new(
                &chip,
                RouterConfig {
                    iterations: 2,
                    threads: 2,
                    method,
                    materialize_windows,
                    ..Default::default()
                },
            )
            .run()
        };
        let view = run(false);
        let mat = run(true);
        assert_eq!(view.metrics.ws.to_bits(), mat.metrics.ws.to_bits(), "{method}: WS differs");
        assert_eq!(view.metrics.tns.to_bits(), mat.metrics.tns.to_bits(), "{method}: TNS differs");
        assert_eq!(view.metrics.vias, mat.metrics.vias, "{method}: vias differ");
        assert_eq!(view.usage, mat.usage, "{method}: usage differs");
        for (i, (a, b)) in view.nets().zip(mat.nets()).enumerate() {
            assert_eq!(a.used_edges, b.used_edges, "{method}: net {i} edges differ");
            assert_eq!(a.sink_delays, b.sink_delays, "{method}: net {i} delays differ");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// WindowView routing ≡ materialized-window routing on random chips
    /// (random generator seed and net count, full CD pipeline with
    /// future costs, pricing, and STA feedback).
    #[test]
    fn window_view_routing_matches_materialized_on_random_chips(
        chip_seed in 0u64..500,
        num_nets in 8usize..30,
    ) {
        let chip = ChipSpec { num_nets, ..ChipSpec::small_test(chip_seed) }.generate();
        let run = |materialize_windows| {
            Router::new(&chip, RouterConfig {
                iterations: 2,
                threads: 2,
                materialize_windows,
                ..Default::default()
            })
            .run()
        };
        let view = run(false);
        let mat = run(true);
        prop_assert_eq!(view.metrics.ws.to_bits(), mat.metrics.ws.to_bits());
        prop_assert_eq!(view.metrics.tns.to_bits(), mat.metrics.tns.to_bits());
        prop_assert_eq!(view.metrics.vias, mat.metrics.vias);
        prop_assert_eq!(&view.usage, &mat.usage);
        for (a, b) in view.nets().zip(mat.nets()) {
            prop_assert_eq!(a.used_edges, b.used_edges);
        }
    }
}

#[test]
fn chip_generation_is_pure() {
    let spec = ChipSpec::small_test(123);
    let a = spec.generate();
    let b = spec.generate();
    assert_eq!(a.nets, b.nets);
    assert_eq!(a.grid.graph().num_edges(), b.grid.graph().num_edges());
    // capacities (including macro depletion) are identical
    for e in a.grid.graph().edge_ids() {
        assert_eq!(
            a.grid.graph().edge(e).capacity.to_bits(),
            b.grid.graph().edge(e).capacity.to_bits()
        );
    }
}

#[test]
fn core_types_are_send_and_sync_where_needed() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    // the router shares these across worker threads
    assert_send_sync::<cds_graph::Graph>();
    assert_send_sync::<cds_graph::GridGraph>();
    assert_send_sync::<cds_graph::EdgeIndex>();
    assert_send_sync::<cds_graph::WindowView<'static>>();
    assert_send_sync::<cds_instgen::Chip>();
    assert_send::<cds_topo::EmbeddedTree>();
    assert_send::<cds_core::SolveResult>();
    // the main thread reads worker forests while merging; views are
    // shared across readers
    assert_send_sync::<cds_topo::RoutedForest>();
    assert_send_sync::<cds_topo::TreeView<'static>>();
}
