//! Determinism and thread-safety guarantees across the stack.
//!
//! Everything in this workspace is specified to be reproducible: same
//! seed → same bits, regardless of thread count or repetition. These
//! tests pin that contract, plus the `Send`/`Sync` properties the
//! parallel router relies on.

use cds_core::{solve, Instance, Request, SolveResult, Solver, SolverOptions};
use cds_graph::{GridGraph, GridSpec};
use cds_instgen::ChipSpec;
use cds_router::{Router, RouterConfig, SteinerMethod};
use cds_topo::BifurcationConfig;

#[test]
fn solver_bitwise_deterministic_across_repeats() {
    let grid = GridSpec::uniform(12, 12, 3).build();
    let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
    let sinks = [
        grid.vertex(11, 3, 0),
        grid.vertex(2, 11, 0),
        grid.vertex(7, 7, 0),
        grid.vertex(11, 11, 0),
        grid.vertex(1, 1, 0),
    ];
    let weights = [0.3, 1.7, 0.02, 2.4, 0.9];
    let inst = Instance {
        graph: grid.graph(),
        cost: &c,
        delay: &d,
        root: grid.vertex(0, 5, 0),
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::new(4.0, 0.25),
    };
    let runs: Vec<_> =
        (0..3).map(|_| solve(&inst, &SolverOptions { seed: 77, ..Default::default() })).collect();
    for r in &runs[1..] {
        assert_eq!(r.evaluation.total.to_bits(), runs[0].evaluation.total.to_bits());
        assert_eq!(r.stats, runs[0].stats);
        let edges: Vec<_> = r.tree.edges().collect();
        let edges0: Vec<_> = runs[0].tree.edges().collect();
        assert_eq!(edges, edges0, "identical edge sets, identical order");
    }
}

#[test]
fn different_seeds_may_differ_but_stay_valid() {
    // the randomized placement only matters without §III-D; exercise it
    let grid = GridSpec::uniform(10, 10, 2).build();
    let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
    let sinks = [grid.vertex(9, 0, 0), grid.vertex(0, 9, 0), grid.vertex(9, 9, 0)];
    let weights = [1.0, 1.0, 1.0];
    let inst = Instance {
        graph: grid.graph(),
        cost: &c,
        delay: &d,
        root: grid.vertex(0, 0, 0),
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::ZERO,
    };
    for seed in 0..12 {
        let opts = SolverOptions {
            better_steiner: false, // re-enable the random endpoint rule
            seed,
            ..Default::default()
        };
        let r = solve(&inst, &opts);
        r.tree.validate(grid.graph(), sinks.len()).unwrap();
    }
}

/// One net of the synthetic request stream: grid index, sinks, weights,
/// penalty config, seed.
type StreamNet = (usize, Vec<u32>, Vec<f64>, BifurcationConfig, u64);

/// Builds a stream of ≥ 100 heterogeneous requests over several grids:
/// varying grid sizes, sink counts, weights, penalties, and seeds — the
/// shape of a rip-up & re-route request stream.
fn heterogeneous_stream(grids: &[GridGraph]) -> Vec<StreamNet> {
    let mut stream = Vec::new();
    for i in 0..120u64 {
        let gi = (i % grids.len() as u64) as usize;
        let grid = &grids[gi];
        let (nx, ny) = (grid.spec().nx, grid.spec().ny);
        let k = 1 + (i % 7) as u32;
        let sinks: Vec<u32> = (0..k)
            .map(|j| {
                grid.vertex(
                    (3 + i as u32 * 5 + j * 11) % nx,
                    (1 + i as u32 * 3 + j * 7) % ny,
                    (j as u8 % grid.spec().layers.len() as u8).min(1),
                )
            })
            .collect();
        let weights: Vec<f64> = (0..k).map(|j| 0.05 + (j as f64) * 0.4 + (i % 3) as f64).collect();
        let bif = if i % 2 == 0 {
            BifurcationConfig::ZERO
        } else {
            BifurcationConfig::new(3.0 + (i % 5) as f64, 0.25)
        };
        stream.push((gi, sinks, weights, bif, i * 31 + 7));
    }
    stream
}

fn assert_bit_identical(a: &SolveResult, b: &SolveResult, ctx: &str) {
    assert_eq!(
        a.evaluation.total.to_bits(),
        b.evaluation.total.to_bits(),
        "{ctx}: objective differs"
    );
    assert_eq!(a.stats, b.stats, "{ctx}: work counters differ");
    let ea: Vec<_> = a.tree.edges().collect();
    let eb: Vec<_> = b.tree.edges().collect();
    assert_eq!(ea, eb, "{ctx}: edge sets differ");
}

#[test]
fn solver_session_reuse_matches_fresh_per_call_over_100_requests() {
    // the session-API contract: a Solver reused across a long, mixed
    // request stream is bit-identical to fresh-per-call solve()
    let grids = [
        GridSpec::uniform(8, 8, 2).build(),
        GridSpec::uniform(12, 9, 3).build(),
        GridSpec::uniform(15, 15, 2).build(),
    ];
    let envs: Vec<(Vec<f64>, Vec<f64>)> =
        grids.iter().map(|g| (g.graph().base_costs(), g.graph().delays())).collect();
    let stream = heterogeneous_stream(&grids);
    assert!(stream.len() >= 100);
    let mut session = Solver::new();
    for (n, (gi, sinks, weights, bif, seed)) in stream.iter().enumerate() {
        let grid = &grids[*gi];
        let (cost, delay) = &envs[*gi];
        let root = grid.vertex(0, 0, 0);
        let req = Request::new(grid.graph(), cost, delay, root, sinks, weights)
            .with_bif(*bif)
            .with_seed(*seed);
        let fresh = solve(&req.instance(), &SolverOptions { seed: *seed, ..Default::default() });
        let reused = session.solve(&req);
        assert_bit_identical(&fresh, &reused, &format!("request {n}"));
    }
    assert_eq!(session.solves(), stream.len() as u64);
}

#[test]
fn solve_batch_matches_sequential_across_thread_counts() {
    let grids = [GridSpec::uniform(10, 10, 2).build(), GridSpec::uniform(7, 13, 3).build()];
    let envs: Vec<(Vec<f64>, Vec<f64>)> =
        grids.iter().map(|g| (g.graph().base_costs(), g.graph().delays())).collect();
    let stream = heterogeneous_stream(&grids);
    let reqs: Vec<Request<'_>> = stream
        .iter()
        .map(|(gi, sinks, weights, bif, seed)| {
            let grid = &grids[*gi];
            let (cost, delay) = &envs[*gi];
            Request::new(grid.graph(), cost, delay, grid.vertex(0, 0, 0), sinks, weights)
                .with_bif(*bif)
                .with_seed(*seed)
        })
        .collect();
    let mut session = Solver::new();
    let sequential: Vec<SolveResult> = reqs.iter().map(|r| session.solve(r)).collect();
    for threads in [2, 5, 8] {
        let batched = session.solve_batch(&reqs, threads);
        assert_eq!(batched.len(), sequential.len());
        for (n, (s, b)) in sequential.iter().zip(&batched).enumerate() {
            assert_bit_identical(s, b, &format!("threads {threads}, request {n}"));
        }
    }
}

#[test]
fn router_identical_for_1_2_and_8_threads() {
    let chip = ChipSpec { num_nets: 40, ..ChipSpec::small_test(44) }.generate();
    let run = |threads| {
        Router::new(
            &chip,
            RouterConfig {
                threads,
                iterations: 2,
                method: SteinerMethod::Cd,
                ..Default::default()
            },
        )
        .run()
    };
    let (a, b, c) = (run(1), run(2), run(8));
    assert_eq!(a.metrics.tns.to_bits(), b.metrics.tns.to_bits());
    assert_eq!(b.metrics.tns.to_bits(), c.metrics.tns.to_bits());
    assert_eq!(a.usage, b.usage);
    assert_eq!(b.usage, c.usage);
}

#[test]
fn chip_generation_is_pure() {
    let spec = ChipSpec::small_test(123);
    let a = spec.generate();
    let b = spec.generate();
    assert_eq!(a.nets, b.nets);
    assert_eq!(a.grid.graph().num_edges(), b.grid.graph().num_edges());
    // capacities (including macro depletion) are identical
    for e in a.grid.graph().edge_ids() {
        assert_eq!(
            a.grid.graph().edge(e).capacity.to_bits(),
            b.grid.graph().edge(e).capacity.to_bits()
        );
    }
}

#[test]
fn core_types_are_send_and_sync_where_needed() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    // the router shares these across worker threads
    assert_send_sync::<cds_graph::Graph>();
    assert_send_sync::<cds_graph::GridGraph>();
    assert_send_sync::<cds_graph::EdgeIndex>();
    assert_send_sync::<cds_instgen::Chip>();
    assert_send::<cds_topo::EmbeddedTree>();
    assert_send::<cds_core::SolveResult>();
}
