//! Cross-crate exactness checks: the heuristics against the exact
//! reference algorithms on instances small enough to solve optimally.

use cds_core::{solve, Instance, SolverOptions};
use cds_embed::{embed_topology, EmbedEnv};
use cds_exact::{enumerate_topologies, optimal_cost_distance, steiner_minimal_tree};
use cds_geom::Point;
use cds_graph::GridSpec;
use cds_rsmt::rsmt_topology;
use cds_topo::BifurcationConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// With `w = 0` and no penalties, the cost-distance objective collapses
/// to plain minimum Steiner tree cost; the optimal embedding of the best
/// enumerated topology must match Dreyfus–Wagner exactly.
#[test]
fn enumeration_matches_dreyfus_wagner_at_zero_weight() {
    let grid = GridSpec::uniform(5, 5, 2).build();
    let g = grid.graph();
    let (c, d) = (g.base_costs(), g.delays());
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..5 {
        let root = grid.vertex(rng.gen_range(0..5), rng.gen_range(0..5), 0);
        let k = rng.gen_range(2..4);
        let sinks: Vec<u32> =
            (0..k).map(|_| grid.vertex(rng.gen_range(0..5), rng.gen_range(0..5), 0)).collect();
        let weights = vec![0.0; k];
        let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif: BifurcationConfig::ZERO };
        let (opt, tree) = optimal_cost_distance(&env, root, &sinks, &weights);
        tree.validate(g, k).unwrap();
        let mut terminals = sinks.clone();
        terminals.push(root);
        terminals.sort_unstable();
        terminals.dedup();
        let dw = steiner_minimal_tree(g, &terminals, |e| c[e as usize]);
        assert!(
            (opt - dw.cost).abs() < 1e-9,
            "enumerated optimum {opt} vs Dreyfus–Wagner {}",
            dw.cost
        );
    }
}

/// The CD solver on a 2-sink instance must match the enumerated optimum
/// exactly when §III-D re-embedding is enabled and weights are equal
/// (the single topology shape leaves only the embedding, and the solver's
/// path search plus re-embedding solves that case optimally on uniform
/// grids).
#[test]
fn cd_two_equal_sinks_near_optimal() {
    let grid = GridSpec::uniform(6, 6, 2).build();
    let g = grid.graph();
    let (c, d) = (g.base_costs(), g.delays());
    let mut rng = StdRng::seed_from_u64(5);
    for trial in 0..8 {
        let root = grid.vertex(rng.gen_range(0..6), rng.gen_range(0..6), 0);
        let sinks = [
            grid.vertex(rng.gen_range(0..6), rng.gen_range(0..6), 0),
            grid.vertex(rng.gen_range(0..6), rng.gen_range(0..6), 0),
        ];
        let weights = [1.0, 1.0];
        let bif = BifurcationConfig::ZERO;
        let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif };
        let (opt, _) = optimal_cost_distance(&env, root, &sinks, &weights);
        let inst = Instance {
            graph: g,
            cost: &c,
            delay: &d,
            root,
            sink_vertices: &sinks,
            weights: &weights,
            bif,
        };
        let r = solve(&inst, &SolverOptions { seed: trial, ..Default::default() });
        assert!(
            r.evaluation.total <= 1.35 * opt + 1e-9,
            "trial {trial}: CD {} vs optimum {opt}",
            r.evaluation.total
        );
    }
}

/// The L1 baseline pipeline (exact RSMT topology + optimal embedding) is
/// optimal for zero weights on instances small enough for the exact
/// RSMT, up to via costs of the 3D embedding.
#[test]
fn l1_pipeline_matches_enumeration_at_zero_weight() {
    let grid = GridSpec::uniform(5, 5, 2).build();
    let g = grid.graph();
    let (c, d) = (g.base_costs(), g.delays());
    let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif: BifurcationConfig::ZERO };
    let root_p = Point::new(0, 0);
    let sink_ps = [Point::new(4, 0), Point::new(0, 4), Point::new(4, 4)];
    let root = grid.vertex_at(root_p);
    let sinks: Vec<u32> = sink_ps.iter().map(|&p| grid.vertex_at(p)).collect();
    let weights = [0.0; 3];
    let topo = rsmt_topology(root_p, &sink_ps, 7).binarize();
    let tree = embed_topology(&env, &topo, root, &sinks, &weights);
    let got = tree.evaluate(&c, &d, &weights, &BifurcationConfig::ZERO).total;
    let (opt, _) = optimal_cost_distance(&env, root, &sinks, &weights);
    assert!(got <= opt * 1.15 + 1e-9, "L1 pipeline {got} should be near the optimum {opt}");
}

/// Every enumerated topology shape embeds to a value at least the
/// optimum, and the shape count matches the double factorial.
#[test]
fn enumeration_is_exhaustive_and_consistent() {
    assert_eq!(enumerate_topologies(4).len(), 15);
    let grid = GridSpec::uniform(4, 4, 2).build();
    let g = grid.graph();
    let (c, d) = (g.base_costs(), g.delays());
    let bif = BifurcationConfig::new(2.0, 0.25);
    let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif };
    let root = grid.vertex(0, 0, 0);
    let sinks = [grid.vertex(3, 0, 0), grid.vertex(0, 3, 0), grid.vertex(3, 3, 0)];
    let w = [1.0, 2.0, 3.0];
    let (opt, best_tree) = optimal_cost_distance(&env, root, &sinks, &w);
    best_tree.validate(g, 3).unwrap();
    for topo in enumerate_topologies(3) {
        let v = cds_embed::embed_value(&env, &topo, root, &sinks, &w);
        assert!(v >= opt - 1e-9);
    }
}
