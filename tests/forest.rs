//! The forest-arena determinism contract: routing through the
//! [`RoutedForest`] slabs is bit-identical to the owned-`EmbeddedTree`
//! reference path. The forest only changes *where* bytes live — never
//! values or enumeration order.
//!
//! Two reference constructions pin this:
//!
//! 1. **Owned-oracle router runs** — a wrapper oracle that implements
//!    only `route()` (so the router's default `route_into` materializes
//!    an owned tree and copies it in) must reproduce the stock CD
//!    outcome — checksums, usage, per-net spans — bit-for-bit across
//!    multiple rip-up iterations and thread counts.
//! 2. **Hand-rolled single-iteration replay** — a first router iteration
//!    runs on base prices and the initial weights, so every per-net
//!    result is recomputable outside the router with owned trees and
//!    owned evaluations; the outcome's forest must match them exactly.

use cds_graph::{RoutingSurface, WindowView};
use cds_instgen::ChipSpec;
use cds_router::{
    OracleRequest, OracleWorkspace, Router, RouterConfig, RoutingOutcome, SteinerMethod,
    SteinerOracle,
};
use cds_topo::EmbeddedTree;
use proptest::prelude::*;

/// Forces the router through the owned-tree compat path: only `route`
/// is implemented, so the default `route_into` builds an owned
/// `EmbeddedTree` and copies it into the forest.
struct OwnedPathCd;

impl SteinerOracle for OwnedPathCd {
    fn name(&self) -> &str {
        "CD-owned"
    }
    fn uses_budgets(&self) -> bool {
        false
    }
    fn route(&self, req: &OracleRequest<'_>, ws: &mut OracleWorkspace) -> EmbeddedTree {
        SteinerMethod::Cd.oracle().route(req, ws)
    }
}

fn outcomes_bit_identical(a: &RoutingOutcome, b: &RoutingOutcome, ctx: &str) {
    assert_eq!(a.checksum(), b.checksum(), "{ctx}: checksums differ");
    assert_eq!(a.usage, b.usage, "{ctx}: usage differs");
    assert_eq!(a.metrics.tns.to_bits(), b.metrics.tns.to_bits(), "{ctx}: TNS differs");
    assert_eq!(a.metrics.wl_m.to_bits(), b.metrics.wl_m.to_bits(), "{ctx}: WL differs");
    for (i, (x, y)) in a.nets().zip(b.nets()).enumerate() {
        assert_eq!(x.used_edges, y.used_edges, "{ctx}: net {i} edges");
        assert_eq!(x.sink_delays, y.sink_delays, "{ctx}: net {i} delays");
        assert_eq!(
            x.wirelength_gcells.to_bits(),
            y.wirelength_gcells.to_bits(),
            "{ctx}: net {i} wirelength"
        );
        assert_eq!(x.vias, y.vias, "{ctx}: net {i} vias");
        // the stored trees match node for node
        assert_eq!(x.tree.num_nodes(), y.tree.num_nodes(), "{ctx}: net {i} node count");
        assert_eq!(x.tree.edges(), y.tree.edges(), "{ctx}: net {i} tree edges");
        for v in 0..x.tree.num_nodes() as u32 {
            assert_eq!(x.tree.children(v), y.tree.children(v), "{ctx}: net {i} node {v}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Random chips routed through the arena path vs the owned-tree
    /// reference path: bit-identical outcomes (checksums, usage, every
    /// span) over a full multi-iteration rip-up run, both thread
    /// counts.
    #[test]
    fn forest_path_matches_owned_reference_on_random_chips(
        chip_seed in 0u64..500,
        num_nets in 8usize..26,
    ) {
        let chip = ChipSpec { num_nets, ..ChipSpec::small_test(chip_seed) }.generate();
        for threads in [1usize, 4] {
            let config = RouterConfig { iterations: 3, threads, ..Default::default() };
            let arena = Router::new(&chip, config.clone()).run();
            let owned = Router::with_oracle(&chip, config, Box::new(OwnedPathCd)).run();
            outcomes_bit_identical(&arena, &owned, &format!("seed {chip_seed} threads {threads}"));
        }
    }
}

#[test]
fn first_iteration_replays_from_owned_trees_and_evaluations() {
    // A 1-iteration run prices every edge at base cost (alpha = 0) and
    // weights every sink at the initial 0.05, so each net's result is
    // an independent oracle call we can replay with owned trees.
    let chip = ChipSpec { num_nets: 40, ..ChipSpec::small_test(23) }.generate();
    let config = RouterConfig { iterations: 1, ..Default::default() };
    let out = Router::new(&chip, config.clone()).run();

    let g = chip.grid.graph();
    let prices = g.base_costs();
    let delays = g.delays();
    let oracle = SteinerMethod::Cd.oracle();
    let mut ws = OracleWorkspace::new();
    let mut usage = vec![0.0f64; g.num_edges()];
    let bif = cds_topo::BifurcationConfig::ZERO; // use_dbif defaults off
    for (i, net) in chip.nets.iter().enumerate() {
        let mut pins = vec![net.root];
        pins.extend_from_slice(&net.sinks);
        let view = WindowView::around(&chip.grid, &pins, config.window_margin);
        let local_sinks: Vec<_> = net.sinks.iter().map(|&p| view.localize(p)).collect();
        let weights = vec![0.05f64; net.sinks.len()];
        let req = OracleRequest {
            surface: &view,
            cost: &prices,
            delay: &delays,
            root: view.localize(net.root),
            sinks: &local_sinks,
            weights: &weights,
            budgets: None,
            bif,
            seed: config.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
        };
        let tree = oracle.route(&req, &mut ws);
        let ev = tree.evaluate(&prices, &delays, &weights, &bif);
        let nv = out.net(i);
        // owned evaluation ≡ the forest's recorded spans, bitwise
        assert_eq!(nv.sink_delays.len(), ev.sink_delays.len(), "net {i}");
        for (j, (&a, &b)) in nv.sink_delays.iter().zip(&ev.sink_delays).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "net {i} sink {j} delay");
        }
        let owned_edges: Vec<u32> = tree.edges().collect();
        assert_eq!(nv.tree.edges(), &owned_edges[..], "net {i} tree edges");
        assert_eq!(
            nv.wirelength_gcells.to_bits(),
            tree.wirelength(g).to_bits(),
            "net {i} wirelength"
        );
        assert_eq!(nv.vias, tree.via_count(g), "net {i} vias");
        // the view evaluates identically to the owned tree
        let view_ev = nv.tree.evaluate(&prices, &delays, &weights, &bif);
        assert_eq!(view_ev, ev, "net {i} view evaluation");
        for &(e, t) in nv.used_edges {
            usage[e as usize] += t;
        }
    }
    // usage vector reconstructed from owned trees matches bit-for-bit
    assert_eq!(usage.len(), out.usage.len());
    for (e, (&a, &b)) in usage.iter().zip(&out.usage).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "usage[{e}]");
    }
}
