//! The incremental rip-up & re-route contract.
//!
//! Three layers of guarantees, in decreasing strictness:
//!
//! 1. **Exactness at `price_tol = 0`** — incremental mode is
//!    bit-identical to the full-reroute reference (`incremental: false`)
//!    for every oracle, thread count, and window backend: a net is only
//!    skipped when every input its oracle reads is bit-unchanged since
//!    it was last routed, and deterministic oracles reproduce their
//!    trees from identical inputs.
//! 2. **Determinism at any tolerance** — the dirty schedule is derived
//!    from shared per-iteration state, so the default (approximate)
//!    mode is still bit-reproducible across thread counts and backends.
//! 3. **Accounting integrity** — incremental usage (subtract old edges,
//!    add new) matches an exact recount bit-for-bit even after many
//!    rip-up cycles, and periodic recounts are value-neutral.

use cds_instgen::ChipSpec;
use cds_router::{Router, RouterConfig, RoutingOutcome, SteinerMethod};

fn outcome_bit_identical(a: &RoutingOutcome, b: &RoutingOutcome, ctx: &str) {
    assert_eq!(a.metrics.ws.to_bits(), b.metrics.ws.to_bits(), "{ctx}: WS differs");
    assert_eq!(a.metrics.tns.to_bits(), b.metrics.tns.to_bits(), "{ctx}: TNS differs");
    assert_eq!(a.metrics.ace4.to_bits(), b.metrics.ace4.to_bits(), "{ctx}: ACE4 differs");
    assert_eq!(a.metrics.wl_m.to_bits(), b.metrics.wl_m.to_bits(), "{ctx}: WL differs");
    assert_eq!(a.metrics.vias, b.metrics.vias, "{ctx}: vias differ");
    assert_eq!(a.usage, b.usage, "{ctx}: usage differs");
    assert_eq!(a.prices, b.prices, "{ctx}: prices differ");
    assert_eq!(a.num_nets(), b.num_nets(), "{ctx}: net count differs");
    for (i, (x, y)) in a.nets().zip(b.nets()).enumerate() {
        assert_eq!(x.used_edges, y.used_edges, "{ctx}: net {i} edges differ");
        assert_eq!(x.sink_delays, y.sink_delays, "{ctx}: net {i} delays differ");
        assert_eq!(x.vias, y.vias, "{ctx}: net {i} vias differ");
    }
    for (v, (x, y)) in a.timing.slack.iter().zip(&b.timing.slack).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: slack[{v}] differs");
    }
}

#[test]
fn zero_tol_incremental_bit_identical_to_full_reroute() {
    // all four oracles × 1/4 threads × both window backends
    let chip = ChipSpec { num_nets: 25, ..ChipSpec::small_test(44) }.generate();
    for method in SteinerMethod::ALL {
        for threads in [1usize, 4] {
            for materialize_windows in [false, true] {
                let run = |incremental| {
                    Router::new(
                        &chip,
                        RouterConfig {
                            method,
                            threads,
                            materialize_windows,
                            incremental,
                            price_tol: 0.0,
                            iterations: 3,
                            ..Default::default()
                        },
                    )
                    .run()
                };
                let inc = run(true);
                let full = run(false);
                outcome_bit_identical(
                    &inc,
                    &full,
                    &format!("{method} threads={threads} mat={materialize_windows}"),
                );
            }
        }
    }
}

#[test]
fn clean_net_skipping_is_exact_when_inputs_freeze() {
    // Freeze the churn sources — price_alpha: 0 pins prices at base
    // cost, a huge weight temperature makes the slack update an exact
    // no-op — so from iteration 2 on, nets without overflow or negative
    // slack are genuinely *clean* and get skipped. At price_tol = 0 the
    // results must still be bit-identical to rerouting everything: a
    // skipped net's inputs are bit-unchanged by construction.
    let chip = ChipSpec { num_nets: 30, ..ChipSpec::small_test(9) }.generate();
    let n = chip.nets.len();
    for method in SteinerMethod::ALL {
        let run = |incremental| {
            Router::new(
                &chip,
                RouterConfig {
                    method,
                    threads: 2,
                    incremental,
                    price_tol: 0.0,
                    price_alpha: 0.0,
                    weight_tau_ps: 1e22,
                    iterations: 4,
                    ..Default::default()
                },
            )
            .run()
        };
        let inc = run(true);
        let full = run(false);
        outcome_bit_identical(&inc, &full, &format!("{method} frozen-input run"));
        // the skip path must actually have been exercised
        let late: usize = inc.stats.rerouted_per_iter[2..].iter().sum();
        assert!(
            late < 2 * n,
            "{method}: no nets were skipped in iterations 2..4: {:?}",
            inc.stats.rerouted_per_iter
        );
        assert_eq!(full.stats.total_rerouted(), 4 * n, "{method}: reference reroutes all");
    }
}

#[test]
fn default_tolerance_deterministic_across_threads_and_backends() {
    // the approximate default diverges from full reroute by design, but
    // must stay bit-reproducible: the schedule is a pure function of
    // shared per-iteration state
    let chip = ChipSpec { num_nets: 40, ..ChipSpec::small_test(17) }.generate();
    let run = |threads, materialize_windows| {
        Router::new(
            &chip,
            RouterConfig { threads, materialize_windows, iterations: 4, ..Default::default() },
        )
        .run()
    };
    let base = run(1, false);
    assert!(base.stats.total_rerouted() > 0);
    for (threads, mat) in [(4, false), (1, true), (4, true)] {
        let other = run(threads, mat);
        outcome_bit_identical(&base, &other, &format!("threads={threads} mat={mat}"));
        assert_eq!(base.stats, other.stats, "schedule differs for threads={threads} mat={mat}");
    }
}

#[test]
fn incremental_usage_matches_exact_recount_after_many_ripups() {
    // 8 iterations of subtract/add cycles with recounting disabled must
    // still reproduce the exact per-edge sums (track counts are
    // integer-valued, so the arithmetic is exact — this pins it)
    let chip = ChipSpec { num_nets: 120, ..ChipSpec::small_test(7) }.generate();
    let run = |recount_every| {
        Router::new(
            &chip,
            RouterConfig { iterations: 8, threads: 4, recount_every, ..Default::default() },
        )
        .run()
    };
    let out = run(0);
    assert_eq!(out.stats.usage_recounts, 0, "recount_every: 0 disables recounts");
    let mut recount = vec![0.0f64; out.usage.len()];
    for rn in out.nets() {
        for &(e, t) in rn.used_edges {
            recount[e as usize] += t;
        }
    }
    for (e, (&r, &u)) in recount.iter().zip(&out.usage).enumerate() {
        assert_eq!(r.to_bits(), u.to_bits(), "edge {e}: incremental {u} vs recount {r}");
    }
    // periodic recounts are value-neutral: same results, every iteration
    let every = run(1);
    assert!(every.stats.usage_recounts > 0);
    outcome_bit_identical(&out, &every, "recount_every 0 vs 1");
}

#[test]
fn returned_prices_are_consistent_with_returned_usage() {
    // Regression: `RoutingOutcome::prices` used to be the stale vector
    // the last iteration routed on (derived from the *previous*
    // iteration's usage history). It must now be the vector implied by
    // the final usage — for a 1-iteration run, where the history equals
    // the usage, that is directly recomputable here.
    let chip = ChipSpec { num_nets: 40, ..ChipSpec::small_test(3) }.generate();
    let out = Router::new(&chip, RouterConfig { iterations: 1, ..Default::default() }).run();
    let g = chip.grid.graph();
    let base = g.base_costs();
    let mut used_edges = 0;
    // e indexes four parallel per-edge arrays
    #[allow(clippy::needless_range_loop)]
    for e in 0..g.num_edges() {
        let cap = g.edge(e as u32).capacity.max(1e-9);
        let want = base[e] * (1.0 * out.usage[e] / cap).min(6.0).exp();
        assert_eq!(
            out.prices[e].to_bits(),
            want.to_bits(),
            "edge {e}: price {} not implied by usage {}",
            out.prices[e],
            out.usage[e]
        );
        if out.usage[e] > 0.0 {
            used_edges += 1;
            assert!(out.prices[e] > base[e], "used edge {e} still at base price");
        }
    }
    assert!(used_edges > 0, "test chip routed nothing");
}

/// Reconstructs the router's timing-node numbering: nodes are assigned
/// in net order, root first, then sinks.
fn sink_nodes(chip: &cds_instgen::Chip) -> Vec<Vec<usize>> {
    let mut count = 0usize;
    chip.nets
        .iter()
        .map(|net| {
            count += 1; // root
            let s: Vec<usize> = (0..net.sinks.len()).map(|j| count + j).collect();
            count += net.sinks.len();
            s
        })
        .collect()
}

#[test]
fn harvest_captures_the_weights_and_budgets_the_final_iteration_routed_with() {
    // Regression: harvest used to snapshot *after* the final slack
    // update, returning weights the router never routed with.
    let chip = ChipSpec { num_nets: 60, ..ChipSpec::small_test(321) }.generate();

    // one iteration: the only weights ever routed are the initial 0.05,
    // and no budgets exist yet
    let one =
        Router::new(&chip, RouterConfig { iterations: 1, harvest: true, ..Default::default() })
            .run();
    assert!(!one.harvest.is_empty());
    for h in &one.harvest {
        assert!(h.weights.iter().all(|w| *w == 0.05), "net {}: {:?}", h.net, h.weights);
        assert!(h.budgets.is_empty(), "net {}: budgets existed before any STA", h.net);
    }

    // two full-reroute iterations: the final iteration routes every net
    // with the weights and budgets produced by iteration 0's closing
    // update, which are recomputable from the 1-iteration run's public
    // outputs
    let two = Router::new(
        &chip,
        RouterConfig { iterations: 2, harvest: true, incremental: false, ..Default::default() },
    )
    .run();
    let nodes = sink_nodes(&chip);
    let tau = RouterConfig::default().weight_tau_ps;
    let min_delay = chip.grid.min_delay_per_gcell();
    let via_delay = chip.grid.spec().via_delay;
    let expect = |h: &cds_router::HarvestedInstance, j: usize| -> (f64, f64) {
        let net = &chip.nets[h.net];
        let slack = one.timing.slack[nodes[h.net][j]];
        let w =
            if slack.is_finite() { (0.05 * (-slack / tau).exp()).clamp(1e-3, 2.0) } else { 0.05 };
        let direct = net.root.l1(net.sinks[j]) as f64 * min_delay + 2.0 * via_delay;
        let achieved = one.net(h.net).sink_delays[j];
        let allowed = if slack.is_finite() { achieved + slack } else { f64::MAX / 4.0 };
        (w, allowed.max(direct))
    };
    for h in &two.harvest {
        let net = &chip.nets[h.net];
        assert_eq!(h.weights.len(), net.sinks.len());
        assert_eq!(h.budgets.len(), net.sinks.len());
        for j in 0..net.sinks.len() {
            let (want_w, want_b) = expect(h, j);
            assert_eq!(
                h.weights[j].to_bits(),
                want_w.to_bits(),
                "net {} sink {j}: weight {} vs expected {want_w}",
                h.net,
                h.weights[j]
            );
            assert_eq!(
                h.budgets[j].to_bits(),
                want_b.to_bits(),
                "net {} sink {j}: budget {} vs expected {want_b}",
                h.net,
                h.budgets[j]
            );
        }
    }

    // incremental mode: harvest reports the inputs of whichever
    // iteration produced the *kept* route — nets ripped up in the final
    // iteration carry the updated weights, clean nets keep iteration
    // 0's initial 0.05 (and its empty budgets)
    let inc =
        Router::new(&chip, RouterConfig { iterations: 2, harvest: true, ..Default::default() })
            .run();
    let (mut kept, mut ripped) = (0usize, 0usize);
    for h in &inc.harvest {
        let net = &chip.nets[h.net];
        let initial = h.weights.iter().all(|w| *w == 0.05) && h.budgets.is_empty();
        if initial {
            kept += 1;
            continue;
        }
        ripped += 1;
        for j in 0..net.sinks.len() {
            let (want_w, want_b) = expect(h, j);
            assert_eq!(
                h.weights[j].to_bits(),
                want_w.to_bits(),
                "net {} sink {j}: rerouted-net weight {} vs expected {want_w}",
                h.net,
                h.weights[j]
            );
            assert_eq!(h.budgets[j].to_bits(), want_b.to_bits(), "net {} sink {j}", h.net);
        }
    }
    assert!(ripped > 0, "no harvested net was ripped up in the final iteration");
    assert!(kept > 0, "no harvested net kept its iteration-0 route (scheduler skipped nothing)");
}

#[test]
fn scheduler_reroutes_under_half_after_the_first_iteration() {
    // the workload the `incremental` bench measures: a converging chip
    // (utilization below the hard-congestion regime)
    let chip = ChipSpec { num_nets: 150, utilization: 0.22, ..ChipSpec::small_test(5) }.generate();
    let out =
        Router::new(&chip, RouterConfig { iterations: 6, threads: 4, ..Default::default() }).run();
    let per = &out.stats.rerouted_per_iter;
    assert_eq!(per[0], chip.nets.len(), "first iteration is a full sweep");
    let after_first: usize = per[1..].iter().sum();
    let budget = chip.nets.len() * (per.len() - 1);
    assert!(
        2 * after_first < budget,
        "rerouted {after_first} of {budget} net-iterations after iteration 1: {per:?}"
    );
}
