//! Integration tests spanning the whole pipeline: instance → all four
//! Steiner oracles → valid trees with consistent objectives.

use cds_geom::Point;
use cds_graph::GridSpec;
use cds_router::{route_net, OracleRequest, SteinerMethod};
use cds_topo::BifurcationConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(rng: &mut StdRng, n: usize, side: i32) -> Vec<Point> {
    (0..n).map(|_| Point::new(rng.gen_range(0..side), rng.gen_range(0..side))).collect()
}

#[test]
fn all_methods_valid_across_sizes_and_penalties() {
    let grid = GridSpec::uniform(14, 14, 4).build();
    let (cost, delay) = (grid.graph().base_costs(), grid.graph().delays());
    let mut rng = StdRng::seed_from_u64(99);
    for k in [1usize, 2, 3, 7, 15] {
        for dbif in [0.0, 7.5] {
            let sinks = random_points(&mut rng, k, 14);
            let weights: Vec<f64> = (0..k).map(|i| 0.05 + i as f64 * 0.3).collect();
            let bif = BifurcationConfig::new(dbif, 0.25);
            let req = OracleRequest {
                surface: &grid,
                cost: &cost,
                delay: &delay,
                root: Point::new(0, 0),
                sinks: &sinks,
                weights: &weights,
                budgets: None,
                bif,
                seed: k as u64,
            };
            for m in SteinerMethod::ALL {
                let tree = route_net(m, &req);
                tree.validate(grid.graph(), k)
                    .unwrap_or_else(|e| panic!("{m} k={k} dbif={dbif}: {e}"));
                let ev = tree.evaluate(&cost, &delay, &weights, &bif);
                assert!(ev.total.is_finite() && ev.total >= 0.0);
                // every sink delay is at least the L1 lower bound
                for (i, &s) in sinks.iter().enumerate() {
                    let lb = Point::new(0, 0).l1(s) as f64 * grid.min_delay_per_gcell();
                    assert!(
                        ev.sink_delays[i] >= lb - 1e-9,
                        "{m}: sink {i} delay {} below bound {lb}",
                        ev.sink_delays[i]
                    );
                }
            }
        }
    }
}

#[test]
fn cd_is_competitive_on_the_objective() {
    // On identical instances CD must stay within a reasonable factor of
    // the best baseline (its own objective is what it optimizes).
    let grid = GridSpec::uniform(16, 16, 4).build();
    let (cost, delay) = (grid.graph().base_costs(), grid.graph().delays());
    let mut rng = StdRng::seed_from_u64(7);
    let mut total = [0.0f64; 4];
    for trial in 0..10 {
        let k = rng.gen_range(3..12);
        let sinks = random_points(&mut rng, k, 16);
        let weights: Vec<f64> =
            (0..k).map(|_| 0.02 * 10f64.powf(rng.gen_range(0.0..1.5))).collect();
        let req = OracleRequest {
            surface: &grid,
            cost: &cost,
            delay: &delay,
            root: Point::new(8, 8),
            sinks: &sinks,
            weights: &weights,
            budgets: None,
            bif: BifurcationConfig::new(5.0, 0.25),
            seed: trial,
        };
        for (i, m) in SteinerMethod::ALL.iter().enumerate() {
            let tree = route_net(*m, &req);
            total[i] += tree.evaluate(&cost, &delay, &weights, &req.bif).total;
        }
    }
    let best = total.iter().cloned().fold(f64::INFINITY, f64::min);
    let cd = total[3];
    assert!(
        cd <= 1.25 * best,
        "CD total {cd} vs best {best} — more than 25% off across 10 instances"
    );
}

#[test]
fn congestion_pricing_steers_cd_away() {
    // price a vertical wall of edges absurdly high: CD must route around
    // it while keeping the objective finite and the tree valid
    let grid = GridSpec::uniform(12, 12, 2).build();
    let mut cost = grid.graph().base_costs();
    let delay = grid.graph().delays();
    for e in grid.graph().edge_ids() {
        let ep = grid.graph().endpoints(e);
        let (cu, cv) = (grid.coord(ep.u), grid.coord(ep.v));
        if cu.x.min(cv.x) == 5 && cu.x.max(cv.x) == 6 {
            cost[e as usize] = 1e4; // the wall between columns 5 and 6
        }
    }
    let sinks = [Point::new(11, 6)];
    let req = OracleRequest {
        surface: &grid,
        cost: &cost,
        delay: &delay,
        root: Point::new(0, 6),
        sinks: &sinks,
        weights: &[0.5],
        budgets: None,
        bif: BifurcationConfig::ZERO,
        seed: 1,
    };
    let tree = route_net(SteinerMethod::Cd, &req);
    let ev = tree.evaluate(&cost, &delay, &[0.5], &BifurcationConfig::ZERO);
    // with a single sink CD is exact: it must pay the wall exactly once
    // (no way around a full-height wall) but never more
    assert!(ev.connection_cost < 2.0 * 1e4, "paid the wall more than once");
}
