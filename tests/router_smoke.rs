//! Integration smoke tests of the full timing-constrained router.

use cds_instgen::ChipSpec;
use cds_router::{
    OracleRequest, OracleWorkspace, Router, RouterConfig, SteinerMethod, SteinerOracle,
};
use cds_topo::EmbeddedTree;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn tiny() -> cds_instgen::Chip {
    ChipSpec { num_nets: 50, ..ChipSpec::small_test(321) }.generate()
}

/// A third-party oracle: delegates to CD but counts every call — proof
/// that the router is open to implementations it has never heard of.
struct CountingOracle {
    calls: Arc<AtomicUsize>,
}

impl SteinerOracle for CountingOracle {
    fn name(&self) -> &str {
        "CD+count"
    }
    fn route(&self, req: &OracleRequest<'_>, ws: &mut OracleWorkspace) -> EmbeddedTree {
        self.calls.fetch_add(1, Ordering::Relaxed);
        SteinerMethod::Cd.oracle().route(req, ws)
    }
}

#[test]
fn custom_oracle_plugs_into_router() {
    let chip = tiny();
    let iterations = 2;
    // full-reroute reference: the wrapper must be routed through for
    // every net in every iteration
    let config = RouterConfig { iterations, incremental: false, ..Default::default() };
    let baseline = Router::new(&chip, config.clone()).run();
    let calls = Arc::new(AtomicUsize::new(0));
    let counting = Box::new(CountingOracle { calls: calls.clone() });
    let router = Router::with_oracle(&chip, config, counting);
    assert_eq!(router.oracle().name(), "CD+count");
    let out = router.run();
    // (route() is only reachable via the trait object we installed)…
    assert_eq!(calls.load(Ordering::Relaxed), chip.nets.len() * iterations);
    assert_eq!(out.stats.total_rerouted(), chip.nets.len() * iterations);
    assert_eq!(out.num_nets(), chip.nets.len());
    // …and produces exactly the stock CD results, since it delegates
    assert_eq!(out.metrics.tns.to_bits(), baseline.metrics.tns.to_bits());
    assert_eq!(out.usage, baseline.usage);
}

#[test]
fn oracle_calls_match_scheduler_stats_in_incremental_mode() {
    // the dirty-net scheduler's stats are the ground truth for how many
    // oracle calls actually happened
    let chip = tiny();
    let calls = Arc::new(AtomicUsize::new(0));
    let counting = Box::new(CountingOracle { calls: calls.clone() });
    let config = RouterConfig { iterations: 4, ..Default::default() };
    assert!(config.incremental, "incremental mode is the default");
    let out = Router::with_oracle(&chip, config, counting).run();
    assert_eq!(calls.load(Ordering::Relaxed), out.stats.total_rerouted());
    assert_eq!(out.stats.rerouted_per_iter.len(), 4);
    assert_eq!(out.stats.rerouted_per_iter[0], chip.nets.len(), "first iteration routes all");
    // the wrapper delegates to CD but reports uses_budgets = true (the
    // conservative default), so its schedule may only be a superset of
    // stock CD's — still, it must skip something on a 4-iteration run
    assert!(
        out.stats.total_rerouted() < chip.nets.len() * 4,
        "scheduler never skipped a net: {:?}",
        out.stats.rerouted_per_iter
    );
}

#[test]
fn full_pipeline_smoke_every_method() {
    let chip = tiny();
    for m in SteinerMethod::ALL {
        let out = Router::new(
            &chip,
            RouterConfig { method: m, iterations: 2, use_dbif: true, ..Default::default() },
        )
        .run();
        assert_eq!(out.num_nets(), chip.nets.len(), "{m}");
        assert!(out.metrics.wl_m > 0.0);
        assert!(out.metrics.vias > 0);
        assert!(out.metrics.ws <= 0.0 || out.metrics.tns == 0.0);
        // usage is consistent with per-net edges
        let total_usage: f64 = out.usage.iter().sum();
        let from_nets: f64 = out.nets().flat_map(|n| n.used_edges.iter().map(|&(_, t)| t)).sum();
        assert!((total_usage - from_nets).abs() < 1e-9);
    }
}

#[test]
fn harvested_instances_replay_identically() {
    let chip = tiny();
    let router =
        Router::new(&chip, RouterConfig { iterations: 2, harvest: true, ..Default::default() });
    let out = router.run();
    let bif = router.bif();
    for h in out.harvest.iter().take(5) {
        let a = router.route_one(h.net, SteinerMethod::Cd, &out.prices, &h.weights, None, bif);
        let b = router.route_one(h.net, SteinerMethod::Cd, &out.prices, &h.weights, None, bif);
        assert_eq!(a.1, b.1, "objective must replay deterministically");
        assert_eq!(a.0.used_edges, b.0.used_edges);
    }
}

#[test]
fn dbif_increases_delays() {
    // the bifurcation penalty can only make delays (weakly) worse
    let chip = tiny();
    let run = |use_dbif| {
        Router::new(&chip, RouterConfig { iterations: 2, use_dbif, ..Default::default() }).run()
    };
    let without = run(false);
    let with = run(true);
    let sum = |o: &cds_router::RoutingOutcome| -> f64 {
        o.nets().flat_map(|n| n.sink_delays.iter()).sum()
    };
    assert!(sum(&with) >= sum(&without) - 1e-6, "penalties cannot reduce total delay");
}

#[test]
fn timing_graph_slacks_respond_to_routing() {
    let chip = tiny();
    let out = Router::new(&chip, RouterConfig { iterations: 2, ..Default::default() }).run();
    // at least one endpoint has finite slack and the report is coherent
    let finite = out.timing.slack.iter().filter(|s| s.is_finite()).count();
    assert!(finite > 0, "no constrained endpoints?");
    assert!(
        out.metrics.ws <= out.timing.slack.iter().cloned().fold(f64::INFINITY, f64::min) + 1e-9
    );
}
