//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of criterion's API the workspace's benches use
//! — groups, `bench_function` / `bench_with_input`, `iter`, the
//! `criterion_group!` / `criterion_main!` macros — on top of plain
//! `std::time::Instant` sampling. Reported statistics are the per-sample
//! mean, median, and min over `sample_size` samples after a warm-up
//! period; output is one line per benchmark on stdout.
//!
//! Extras over upstream that the session bench uses:
//!
//! * `CRITERION_QUICK=1` (or a `--test` CLI argument) runs every
//!   benchmark with one sample of one iteration — used to smoke-test
//!   bench targets cheaply;
//! * `Bencher::iterations()` exposes how many iterations the last
//!   measurement loop ran, for throughput accounting.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (benches may also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--test")
}

/// Benchmark driver handed to the `criterion_group!` functions.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { quick: quick_mode() }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            quick: self.quick,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 20, Duration::from_secs(3), Duration::from_millis(500), self.quick, f);
        self
    }
}

/// A named parameterized benchmark id, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    quick: bool,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(&full, self.sample_size, self.measurement_time, self.warm_up_time, self.quick, f);
        self
    }

    /// Benchmarks `f` with an input reference, mirroring criterion's
    /// `bench_with_input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.quick,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Conversion of plain strings and [`BenchmarkId`]s into display ids.
pub trait IntoBenchId {
    /// The display id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Passed to the benchmark closure; `iter` runs the measurement loop.
pub struct Bencher {
    /// Number of iterations to run this sample.
    iters: u64,
    /// Measured duration of the sample (set by `iter`).
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Iterations the last `iter` call ran (shim extension).
    pub fn iterations(&self) -> u64 {
        self.iters
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one<F>(
    name: &str,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    quick: bool,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if quick {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("{name:<48} quick-check ok ({})", fmt_duration(b.elapsed));
        return;
    }
    // Warm-up: run single iterations until the warm-up budget is spent,
    // estimating the per-iteration time as we go.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up {
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed;
        }
    }
    // Pick an iteration count so `sample_size` samples fit the budget.
    let budget_per_sample = measurement.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget_per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut sb = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut sb);
        samples.push(sb.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let min = samples.first().copied().unwrap_or(0.0);
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let d = |ns: f64| fmt_duration(Duration::from_nanos(ns as u64));
    println!(
        "{name:<48} min {:>12}  median {:>12}  mean {:>12}  ({} samples × {} iters)",
        d(min),
        d(median),
        d(mean),
        samples.len(),
        iters
    );
}

/// Declares a benchmark group function list, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
