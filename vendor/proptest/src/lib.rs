//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the small slice of proptest the workspace's tests use:
//! the [`proptest!`] macro, range / tuple / `collection::vec` /
//! `collection::hash_set` strategies, `prop_assert!` /
//! `prop_assert_eq!`, and [`ProptestConfig::with_cases`].
//!
//! Semantics: each property runs `cases` times with values drawn from a
//! deterministic SplitMix64 stream (seeded per test by the test's name),
//! and failures panic with the formatted message. There is **no
//! shrinking** — a failing case reports the drawn values' debug
//! representation only via the assertion message. That is a weaker
//! debugging experience than real proptest but identical pass/fail
//! power for CI purposes.

/// Deterministic generator behind every strategy draw.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; the macro derives the seed from the test name
    /// and case index so every test is reproducible in isolation.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0xA076_1D64_78BD_642F }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`; any `u64` for `span == 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.next_u64();
        }
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a sampler.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                (lo as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy wrapped with a mapping function (`Strategy::prop_map`).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Extension adapters on strategies.
pub trait StrategyExt: Strategy + Sized {
    /// Maps drawn values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<S: Strategy> StrategyExt for S {}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection sizes: a fixed count or a half-open range, mirroring
/// `proptest::collection::SizeRange` conversions.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `hash_set`).

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Draws vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with element strategy `S`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Draws hash sets whose cardinality is drawn from `size`.
    ///
    /// Like real proptest, the set is built by repeated insertion; if
    /// the element domain is too small to reach the drawn cardinality
    /// the attempt is capped and the set may come out smaller (real
    /// proptest rejects instead — none of our tests depend on the
    /// difference, their domains are ample).
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 100 + 1000 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the full suite fast
        // while still exercising plenty of the input space every run.
        ProptestConfig { cases: 64 }
    }
}

/// Stable 64-bit FNV-1a hash of the test name, used as the base seed so
/// every property gets its own deterministic stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Samples a strategy once — the macro's per-parameter draw hook.
pub fn draw<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    strategy.sample(rng)
}

pub mod prelude {
    //! The glob import used by test modules (`use proptest::prelude::*`).
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, StrategyExt, TestRng,
    };
}

/// Asserts a condition inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when an assumption does not hold.
///
/// The shim simply returns from the case closure; skipped cases count
/// toward the case budget (real proptest retries — none of our tests
/// rely on the distinction).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The property-test macro.
///
/// Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     /// doc comment
///     #[test]
///     fn prop(a in 0u32..10, b in collection::vec(0.0f64..1.0, 1..5)) {
///         prop_assert!(a < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    // one closure per case so prop_assume! can `return`
                    #[allow(unused_mut)]
                    let mut run = |rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::draw(&($strat), rng);)+
                        $body
                    };
                    run(&mut rng);
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 0u32..10, b in -5i32..5, f in 0.5f64..=1.5) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.5..=1.5).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn collections_respect_sizes(
            v in collection::vec((0u32..4, 0.0f64..1.0), 2..6),
            s in collection::hash_set((0i32..100, 0i32..100), 3..7),
            fixed in collection::vec(0.1f64..8.0, 5),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 7 && s.len() >= 3);
            prop_assert_eq!(fixed.len(), 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
