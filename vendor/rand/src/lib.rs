//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen` / `gen_range`. The generator is
//! SplitMix64 — statistically fine for synthetic-instance generation and
//! randomized tie-breaking, and fully deterministic per seed (which is
//! the property the workspace's reproducibility contract actually
//! needs). It is **not** the real `rand` ChaCha core: sequences differ
//! from upstream `StdRng`, but nothing in this workspace depends on the
//! upstream bit streams.

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from, producing `T`.
///
/// Generic over `T` (like upstream rand) so that the call site's
/// expected type drives integer-literal inference.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(i32 => i64, i64 => i64, u32 => u64, u64 => u64, usize => u64, u8 => u64, u16 => u64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range in gen_range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Uniform integer in `[0, span)` (or any `u64` when `span == 0`),
/// via rejection sampling to avoid modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Core generator interface: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Same name as `rand::rngs::StdRng` so call sites are unchanged;
    /// the stream differs from upstream (see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..=5);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(0.85..1.30);
            assert!((0.85..1.30).contains(&f));
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_range_hits_extremes_eventually() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..10_000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
